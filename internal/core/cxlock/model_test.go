package cxlock

import (
	"testing"
	"testing/quick"

	"machlock/internal/sched"
)

// refModel is an executable specification of the complex lock's sequential
// semantics, written directly from the paper's Appendix B text. The
// property tests drive the real lock and the model through identical
// single-threaded operation sequences and demand identical outcomes.
type refModel struct {
	readers     int
	writeHeld   bool
	upgradeHeld bool // write standing obtained via upgrade
	recursive   bool // recursion enabled for "the" thread
	depth       int
	// myReads counts the single test thread's read holds (the model only
	// tracks one thread, which is all a sequential sequence has).
	myReads int
}

func (m *refModel) writeStanding() bool { return m.writeHeld || m.upgradeHeld }

func (m *refModel) tryRead() bool {
	// Sequential: no competing writers exist; a try-read fails only if
	// the single thread itself holds write standing without being the
	// recursive holder (then want_write blocks it)… but a same-thread
	// re-read while it holds write is exactly what the recursive option
	// gates. Without recursion, TryRead while we hold write must fail.
	if m.writeStanding() && !m.recursive {
		return false
	}
	m.readers++
	m.myReads++
	return true
}

func (m *refModel) tryWrite() bool {
	if m.recursive && m.writeStanding() {
		m.depth++
		return true
	}
	if m.writeStanding() || m.readers > 0 {
		return false
	}
	m.writeHeld = true
	return true
}

func (m *refModel) tryUpgrade() bool {
	if m.myReads == 0 {
		return false // not legal to attempt; caller filters
	}
	if m.recursive && m.writeStanding() {
		m.readers--
		m.myReads--
		m.depth++
		return true
	}
	// Solo: no other readers, no pending upgrade → succeeds.
	m.readers--
	m.myReads--
	m.upgradeHeld = true
	return true
}

func (m *refModel) downgrade() bool {
	if !m.writeStanding() {
		return false // not legal; caller filters
	}
	m.readers++
	m.myReads++
	if m.recursive && m.depth > 0 {
		m.depth--
	} else if m.upgradeHeld {
		m.upgradeHeld = false
	} else {
		m.writeHeld = false
	}
	return true
}

func (m *refModel) done() bool {
	switch {
	case m.readers > 0:
		m.readers--
		m.myReads--
	case m.recursive && m.depth > 0:
		m.depth--
	case m.upgradeHeld:
		m.upgradeHeld = false
	case m.writeHeld:
		m.writeHeld = false
	default:
		return false // not legal; caller filters
	}
	return true
}

func (m *refModel) held() bool {
	return m.readers > 0 || m.writeStanding() || m.depth > 0
}

// TestModelEquivalenceQuick drives random legal operation sequences
// through the real lock and the reference model, comparing every
// observable outcome.
func TestModelEquivalenceQuick(t *testing.T) {
	type op uint8
	const (
		opTryRead op = iota
		opTryWrite
		opTryUpgrade
		opDowngrade
		opDone
		opSetRecursive
		opClearRecursive
		nOps
	)
	f := func(raw []uint8) bool {
		l := New(false)
		th := sched.New("t")
		m := &refModel{}
		for _, r := range raw {
			switch op(r % uint8(nOps)) {
			case opTryRead:
				got := l.TryRead(th)
				want := m.tryRead()
				if got != want {
					t.Logf("TryRead: got %v want %v (model %+v)", got, want, m)
					return false
				}
				if got != want || (got && l.Readers() != m.readers) {
					return false
				}
				if !got {
					// Model said no but we mutated nothing; ok.
					continue
				}
			case opTryWrite:
				got := l.TryWrite(th)
				want := m.tryWrite()
				if got != want {
					t.Logf("TryWrite: got %v want %v (model %+v)", got, want, m)
					return false
				}
			case opTryUpgrade:
				if m.myReads == 0 {
					continue // upgrading without a read hold is illegal
				}
				// Upgrading while holding FURTHER reads of one's own
				// self-deadlocks (the upgrade waits for "other" readers
				// that are the caller itself) — the same trap as any
				// same-thread re-acquisition without the Recursive
				// option. Only the legal single-hold upgrade is modeled.
				if !m.writeStanding() && m.myReads != 1 {
					continue
				}
				// In a recursive-after-downgrade state the real lock
				// refuses; skip that corner (covered by directed tests).
				if m.recursive && !m.writeStanding() {
					continue
				}
				got := l.TryReadToWrite(th)
				want := m.tryUpgrade()
				if got != want {
					t.Logf("TryReadToWrite: got %v want %v (model %+v)", got, want, m)
					return false
				}
			case opDowngrade:
				if !m.writeStanding() {
					continue
				}
				l.WriteToRead(th)
				m.downgrade()
			case opDone:
				if !m.held() {
					continue
				}
				// "lock_clear_recursive should be called by the caller
				// of lock_set_recursive before releasing the lock":
				// dropping the final hold with recursion still set is a
				// protocol violation, so legal sequences never do it.
				holds := m.readers + m.depth
				if m.writeStanding() {
					holds++
				}
				if m.recursive && holds <= 1 {
					continue
				}
				l.Done(th)
				if !m.done() {
					return false
				}
			case opSetRecursive:
				if !m.writeStanding() || m.recursive {
					continue
				}
				l.SetRecursive(th)
				m.recursive = true
			case opClearRecursive:
				// Clearing recursion with recursive acquisitions still
				// outstanding — write depth OR reads taken through the
				// holder bypass — is the protocol violation the paper's
				// "before releasing the lock" rule forbids.
				if !m.recursive || m.depth != 0 || m.myReads != 0 {
					continue
				}
				l.ClearRecursive(th)
				m.recursive = false
			}
			// Cross-check observable state after every step.
			if l.Readers() != m.readers {
				t.Logf("readers: lock %d model %d", l.Readers(), m.readers)
				return false
			}
			wantWrite := m.writeStanding() && m.readers == 0
			if l.HeldForWrite() != wantWrite {
				t.Logf("heldForWrite: lock %v model %v (%+v)", l.HeldForWrite(), wantWrite, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

package cxlock

import (
	"sync/atomic"
	"testing"

	"machlock/internal/sched"
)

// countObserver tallies events; identity-distinct instances let the tests
// verify fan-out and selective removal.
type countObserver struct {
	acquired, released, waiting, doneWaiting atomic.Int64
}

func (c *countObserver) Acquired(l *Lock, t *sched.Thread)    { c.acquired.Add(1) }
func (c *countObserver) Released(l *Lock, t *sched.Thread)    { c.released.Add(1) }
func (c *countObserver) Waiting(l *Lock, t *sched.Thread)     { c.waiting.Add(1) }
func (c *countObserver) DoneWaiting(l *Lock, t *sched.Thread) { c.doneWaiting.Add(1) }

func drainObservers(t *testing.T) {
	t.Helper()
	SetObserver(nil)
	if obs := observers.Load(); obs != nil {
		t.Fatalf("test started with observers installed: %d", len(*obs))
	}
}

func TestAddObserverFansOut(t *testing.T) {
	drainObservers(t)
	a, b, c := &countObserver{}, &countObserver{}, &countObserver{}
	AddObserver(a)
	AddObserver(b)
	AddObserver(c)
	defer RemoveObserver(a)
	defer RemoveObserver(b)
	defer RemoveObserver(c)

	l := New(false)
	self := sched.New("fanout")
	l.Write(self)
	l.Done(self)

	for i, o := range []*countObserver{a, b, c} {
		if o.acquired.Load() != 1 || o.released.Load() != 1 {
			t.Fatalf("observer %d missed events: acquired=%d released=%d",
				i, o.acquired.Load(), o.released.Load())
		}
	}
}

func TestRemoveObserverIsSelective(t *testing.T) {
	drainObservers(t)
	a, b := &countObserver{}, &countObserver{}
	AddObserver(a)
	AddObserver(b)
	defer RemoveObserver(b)
	RemoveObserver(a)

	l := New(false)
	self := sched.New("selective")
	l.Read(self)
	l.Done(self)

	if a.acquired.Load() != 0 {
		t.Fatalf("removed observer still receiving events: %d", a.acquired.Load())
	}
	if b.acquired.Load() != 1 {
		t.Fatalf("remaining observer lost events: %d", b.acquired.Load())
	}
	// Removing an observer that is not installed must be a no-op.
	RemoveObserver(a)
	RemoveObserver(&countObserver{})
}

func TestSetObserverLegacySlotCoexists(t *testing.T) {
	drainObservers(t)
	added, legacy1, legacy2 := &countObserver{}, &countObserver{}, &countObserver{}
	AddObserver(added)
	defer RemoveObserver(added)

	SetObserver(legacy1)
	l := New(false)
	self := sched.New("legacy")
	l.Write(self)
	l.Done(self)
	if legacy1.acquired.Load() != 1 || added.acquired.Load() != 1 {
		t.Fatalf("fan-out with legacy slot broken: legacy=%d added=%d",
			legacy1.acquired.Load(), added.acquired.Load())
	}

	// Replacing the legacy observer evicts only the legacy one.
	SetObserver(legacy2)
	l.Write(self)
	l.Done(self)
	if legacy1.acquired.Load() != 1 {
		t.Fatalf("replaced legacy observer still receiving events")
	}
	if legacy2.acquired.Load() != 1 || added.acquired.Load() != 2 {
		t.Fatalf("legacy replacement broke fan-out: legacy2=%d added=%d",
			legacy2.acquired.Load(), added.acquired.Load())
	}

	// SetObserver(nil) clears the legacy slot, not the whole list.
	SetObserver(nil)
	l.Write(self)
	l.Done(self)
	if legacy2.acquired.Load() != 1 {
		t.Fatalf("SetObserver(nil) left legacy observer installed")
	}
	if added.acquired.Load() != 3 {
		t.Fatalf("SetObserver(nil) evicted an AddObserver registration")
	}
}

func TestRemoveObserverClearsLegacySlot(t *testing.T) {
	drainObservers(t)
	o := &countObserver{}
	SetObserver(o)
	RemoveObserver(o) // removing the legacy observer directly must clear the slot
	SetObserver(nil)  // and this must not double-remove or panic
	if obs := observers.Load(); obs != nil {
		t.Fatalf("observer list not empty: %d", len(*obs))
	}
}

package cxlock

import (
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/sched"
)

func TestClassLockSameClassShares(t *testing.T) {
	l := NewClassLock()
	var peak, cur atomic.Int32
	var threads []*sched.Thread
	for i := 0; i < 6; i++ {
		threads = append(threads, sched.Go("fwd", func(self *sched.Thread) {
			l.Acquire(Forward, self)
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			l.Release(Forward, self)
		}))
	}
	join(t, "same-class holders", threads...)
	if peak.Load() < 2 {
		t.Fatalf("peak same-class holders = %d, want >= 2 (classes must share)", peak.Load())
	}
}

func TestClassLockClassesExclude(t *testing.T) {
	l := NewClassLock()
	var inF, inR atomic.Int32
	var violations atomic.Int32
	var threads []*sched.Thread
	for i := 0; i < 8; i++ {
		cls := Forward
		mine, theirs := &inF, &inR
		if i%2 == 1 {
			cls = Reverse
			mine, theirs = &inR, &inF
		}
		threads = append(threads, sched.Go("c", func(self *sched.Thread) {
			for j := 0; j < 300; j++ {
				l.Acquire(cls, self)
				mine.Add(1)
				if theirs.Load() != 0 {
					violations.Add(1)
				}
				mine.Add(-1)
				l.Release(cls, self)
			}
		}))
	}
	join(t, "exclusion stress", threads...)
	if violations.Load() != 0 {
		t.Fatalf("%d cross-class co-residencies", violations.Load())
	}
}

func TestClassLockTryAcquire(t *testing.T) {
	l := NewClassLock()
	a, b := sched.New("a"), sched.New("b")
	if !l.TryAcquire(Forward, a) {
		t.Fatal("try on free lock failed")
	}
	if l.TryAcquire(Reverse, b) {
		t.Fatal("other class admitted while held")
	}
	if !l.TryAcquire(Forward, b) {
		t.Fatal("same class refused")
	}
	if l.Holders(Forward) != 2 {
		t.Fatalf("holders = %d", l.Holders(Forward))
	}
	l.Release(Forward, a)
	l.Release(Forward, b)
	if !l.TryAcquire(Reverse, b) {
		t.Fatal("reverse refused on drained lock")
	}
	l.Release(Reverse, b)
}

func TestClassLockReleaseUnheldPanics(t *testing.T) {
	l := NewClassLock()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Release(Forward, nil)
}

// TestClassLockAntiStarvation: a continuous forward flood must not starve
// a reverse requestor — the turn bias queues new forward entrants behind
// the waiting reverse one.
func TestClassLockAntiStarvation(t *testing.T) {
	l := NewClassLock()
	stop := make(chan struct{})
	var flood []*sched.Thread
	for i := 0; i < 4; i++ {
		flood = append(flood, sched.Go("fwd", func(self *sched.Thread) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Acquire(Forward, self)
				time.Sleep(100 * time.Microsecond)
				l.Release(Forward, self)
			}
		}))
	}
	done := make(chan struct{})
	rev := sched.Go("rev", func(self *sched.Thread) {
		for i := 0; i < 20; i++ {
			l.Acquire(Reverse, self)
			l.Release(Reverse, self)
		}
		close(done)
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reverse class starved by forward flood")
	}
	close(stop)
	join(t, "flood", flood...)
	rev.Join()
}

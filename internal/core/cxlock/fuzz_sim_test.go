package cxlock

// Fuzz target over Options combinations: the fuzzer picks the lock's
// option bits (Sleep / Recursive / ReaderBias / fault injection) and an
// operation string, which is split across two threads and interpreted
// against each thread's current hold state so every operation is legal.
// The sequences then run under seeded-random and bounded-DFS schedule
// exploration; any shadow-model violation, deadlock, or unreleased hold
// fails the input.

import (
	"testing"

	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// holdNone/holdRead/holdWrite track one fuzz thread's standing on the lock.
const (
	holdNone = iota
	holdRead
	holdWrite
)

// fuzzOps interprets seq against l, keeping every call legal for the
// thread's current hold state and releasing whatever is still held at the
// end. upgradeFailed counts ReadToWrite losses (the hold is gone, per the
// contract).
func fuzzOps(l *Lock, t *sched.Thread, seq []byte) {
	hold := holdNone
	for _, op := range seq {
		switch hold {
		case holdNone:
			switch op % 4 {
			case 0:
				l.Read(t)
				hold = holdRead
			case 1:
				l.Write(t)
				hold = holdWrite
			case 2:
				if l.TryRead(t) {
					hold = holdRead
				}
			case 3:
				if l.TryWrite(t) {
					hold = holdWrite
				}
			}
		case holdRead:
			switch op % 3 {
			case 0:
				l.Done(t)
				hold = holdNone
			case 1:
				if l.ReadToWrite(t) {
					hold = holdNone // failed upgrade released the hold
				} else {
					hold = holdWrite
				}
			case 2:
				if l.TryReadToWrite(t) {
					hold = holdWrite
				} // on false the read hold is intact
			}
		case holdWrite:
			if op%2 == 0 {
				l.Done(t)
				hold = holdNone
			} else {
				l.WriteToRead(t)
				hold = holdRead
			}
		}
	}
	if hold != holdNone {
		l.Done(t)
	}
}

func FuzzSimCxlockOptions(f *testing.F) {
	f.Add(byte(0), []byte{0, 1, 0, 1})
	f.Add(byte(1), []byte{1, 1, 0, 0})        // Sleep
	f.Add(byte(4), []byte{0, 0, 2, 1, 0, 1})  // ReaderBias
	f.Add(byte(5), []byte{0, 1, 1, 2, 0})     // Sleep + ReaderBias
	f.Add(byte(8), []byte{2, 3, 0, 2, 1})     // fault injection on the tries
	f.Add(byte(12), []byte{0, 2, 1, 3, 0, 2}) // ReaderBias + faults
	f.Fuzz(func(t *testing.T, optBits byte, ops []byte) {
		if len(ops) > 12 {
			ops = ops[:12]
		}
		opt := Options{
			Sleep:      optBits&1 != 0,
			Recursive:  optBits&2 != 0,
			ReaderBias: optBits&4 != 0,
			Name:       "fuzz",
		}
		simOpt := machsim.Options{FaultTries: optBits&8 != 0}
		var seed int64 = 1
		for _, b := range ops {
			seed = seed*131 + int64(b)
		}
		seed += int64(optBits) << 32
		scenario := func(s *machsim.Sim) {
			l := NewWith(opt)
			s.Label(l, "fuzz")
			half := (len(ops) + 1) / 2
			s.Spawn("a", func(t *sched.Thread) { fuzzOps(l, t, ops[:half]) })
			s.Spawn("b", func(t *sched.Thread) { fuzzOps(l, t, ops[half:]) })
			s.AtEnd(func(fail func(string, ...any)) {
				if l.HeldForWrite() || l.Readers() != 0 {
					fail("lock left held: write=%v readers=%d", l.HeldForWrite(), l.Readers())
				}
			})
		}
		machsim.Check(t, machsim.Random(scenario, 4, seed, simOpt))
		machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 64}, simOpt))
	})
}

package cxlock

// Holder-blame integration: when a waiter blocks, the delay must land in
// the class's blame profile keyed by the CURRENT HOLDER's acquisition
// stack — the causal view ("who made me wait") that the waiter-keyed wait
// profile cannot give. Sampling is forced to 1 so the assertions are
// deterministic.

import (
	"strings"
	"testing"
	"time"

	"machlock/internal/sched"
	"machlock/internal/trace"
)

// blameHolderTakesLock is the distinct call site the blame profile must
// name: the holder acquires through here, so the sampled acquisition stack
// carries this function.
func blameHolderTakesLock(l *Lock, t *sched.Thread) {
	l.Write(t)
}

func TestHolderBlameNamesCallSite(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	trace.SetStackSampling(1)
	defer trace.SetStackSampling(trace.DefaultStackSampleRate)

	cls := trace.NewClass("cxlocktest", t.Name(), trace.KindComplex)
	l := NewWith(Options{Sleep: true, Name: t.Name(), Class: cls})

	held := make(chan struct{})
	holder := sched.Go("blame-holder", func(self *sched.Thread) {
		blameHolderTakesLock(l, self)
		close(held) // the hold is published before Write returns
		time.Sleep(3 * time.Millisecond)
		l.Done(self)
	})
	waiter := sched.Go("blame-waiter", func(self *sched.Thread) {
		<-held
		l.Write(self) // blocks on the published holder
		l.Done(self)
	})
	holder.Join()
	waiter.Join()

	// The waiter's delay must be attributed to the holder's call site.
	var blamedNs int64
	for _, s := range cls.Sites(trace.SiteBlame) {
		if s.Stack != nil && strings.Contains(s.Stack.String(), "blameHolderTakesLock") {
			blamedNs += s.Ns
		}
	}
	if blamedNs <= 0 {
		t.Fatalf("no blame attributed to the holder call site; sites: %+v",
			cls.Sites(trace.SiteBlame))
	}

	// The hold itself must appear in the hold profile under the same site,
	// with at least the deliberate 3ms dwell.
	var heldNs int64
	for _, s := range cls.Sites(trace.SiteHolds) {
		if s.Stack != nil && strings.Contains(s.Stack.String(), "blameHolderTakesLock") {
			heldNs += s.Ns
		}
	}
	if heldNs < (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("hold profile missed the long hold: %dns", heldNs)
	}

	// And the waiter's own stack keys the wait profile.
	var waitNs int64
	for _, s := range cls.Sites(trace.SiteWaits) {
		waitNs += s.Ns
	}
	if waitNs <= 0 {
		t.Fatalf("wait profile empty after a contended acquisition")
	}
}

// TestBlameUnsampledHolderIsUnattributed: with capture disabled the blame
// delay must land in the honest "<unattributed>" bucket, not vanish.
func TestBlameUnsampledHolderIsUnattributed(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	trace.SetStackSampling(0) // no holds sampled
	defer trace.SetStackSampling(trace.DefaultStackSampleRate)

	cls := trace.NewClass("cxlocktest", t.Name(), trace.KindComplex)
	l := NewWith(Options{Sleep: true, Name: t.Name(), Class: cls})

	held := make(chan struct{})
	holder := sched.Go("holder", func(self *sched.Thread) {
		l.Write(self)
		close(held)
		time.Sleep(2 * time.Millisecond)
		l.Done(self)
	})
	waiter := sched.Go("waiter", func(self *sched.Thread) {
		<-held
		l.Write(self)
		l.Done(self)
	})
	holder.Join()
	waiter.Join()

	sites := cls.Sites(trace.SiteBlame)
	if len(sites) != 1 || sites[0].Stack != nil || sites[0].Ns <= 0 {
		t.Fatalf("unattributed blame wrong: %+v", sites)
	}
	if len(cls.Sites(trace.SiteHolds)) != 0 {
		t.Fatal("hold captured with sampling disabled")
	}
}

package cxlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/sched"
)

func join(t *testing.T, what string, threads ...*sched.Thread) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for _, th := range threads {
			th.Join()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestZeroValueIsSpinLock(t *testing.T) {
	var l Lock
	l.Read(nil)
	l.Done(nil)
	l.Write(nil)
	l.Done(nil)
	if l.CanSleep() {
		t.Fatal("zero value lock is sleepable")
	}
}

func TestMultipleReadersShareTheLock(t *testing.T) {
	l := New(true)
	var concurrent, peak atomic.Int32
	var threads []*sched.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, sched.Go("r", func(self *sched.Thread) {
			l.Read(self)
			n := concurrent.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			concurrent.Add(-1)
			l.Done(self)
		}))
	}
	join(t, "readers", threads...)
	if peak.Load() < 2 {
		t.Fatalf("peak concurrent readers = %d, want >= 2", peak.Load())
	}
	if l.Readers() != 0 {
		t.Fatalf("readers after done = %d", l.Readers())
	}
}

func TestWriterExcludesEverything(t *testing.T) {
	for _, sleepable := range []bool{false, true} {
		l := New(sleepable)
		var active atomic.Int32
		var violations atomic.Int32
		var threads []*sched.Thread
		for i := 0; i < 6; i++ {
			writer := i%2 == 0
			threads = append(threads, sched.Go("w", func(self *sched.Thread) {
				for j := 0; j < 50; j++ {
					if writer {
						l.Write(self)
						if active.Add(1) != 1 {
							violations.Add(1)
						}
						active.Add(-1)
						l.Done(self)
					} else {
						l.Read(self)
						if active.Load() != 0 {
							violations.Add(1)
						}
						l.Done(self)
					}
				}
			}))
		}
		join(t, "writers", threads...)
		if violations.Load() != 0 {
			t.Fatalf("sleepable=%v: %d exclusion violations", sleepable, violations.Load())
		}
	}
}

func TestWriterPriorityBlocksNewReaders(t *testing.T) {
	// "readers may not be added to a lock held for reading in the
	// presence of an outstanding write request"
	l := New(true)
	holder := sched.New("holder")
	l.Read(holder)

	writerGotIt := make(chan struct{})
	writer := sched.Go("writer", func(self *sched.Thread) {
		l.Write(self) // queues behind the existing reader
		close(writerGotIt)
		l.Done(self)
	})
	// Wait for the writer to register its want_write request.
	for {
		l.interlock.Lock()
		w := l.wantWrite
		l.interlock.Unlock()
		if w {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// A new reader must now be refused (TryRead) and must queue (Read).
	late := sched.New("late")
	if l.TryRead(late) {
		t.Fatal("TryRead succeeded with an outstanding write request")
	}
	lateReader := sched.Go("late-reader", func(self *sched.Thread) {
		l.Read(self)
		select {
		case <-writerGotIt:
		default:
			t.Error("late reader admitted before queued writer")
		}
		l.Done(self)
	})
	time.Sleep(10 * time.Millisecond)
	l.Done(holder) // release the original read hold; writer proceeds
	join(t, "writer+late reader", writer, lateReader)
}

func TestUpgradeSucceedsWhenAlone(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Read(th)
	if failed := l.ReadToWrite(th); failed {
		t.Fatal("solo upgrade failed")
	}
	if !l.HeldForWrite() {
		t.Fatal("lock not write-held after upgrade")
	}
	l.Done(th)
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	l := New(true)
	other := sched.New("other")
	l.Read(other)

	upgraded := make(chan struct{})
	up := sched.Go("up", func(self *sched.Thread) {
		l.Read(self)
		if failed := l.ReadToWrite(self); failed {
			t.Error("upgrade failed with no competing upgrade")
		}
		close(upgraded)
		l.Done(self)
	})
	select {
	case <-upgraded:
		t.Fatal("upgrade completed while another reader held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	l.Done(other)
	join(t, "upgrader", up)
}

func TestSecondUpgradeFailsAndReleasesReadLock(t *testing.T) {
	// The deadlock-avoidance rule: "causing upgrades to fail (releasing
	// their read locks) in the presence of another upgrade request."
	l := New(true)
	a := sched.New("a")
	b := sched.New("b")
	l.Read(a)
	l.Read(b)

	firstWaiting := make(chan struct{})
	first := sched.Go("first-up", func(self *sched.Thread) {
		// Take over a's read hold conceptually: use thread a's hold by
		// doing our own read then upgrade.
		close(firstWaiting)
		if failed := l.ReadToWrite(a); failed {
			t.Error("first upgrade failed")
		}
		l.Done(a)
	})
	<-firstWaiting
	// Wait until the first upgrade registers want_upgrade.
	for {
		l.interlock.Lock()
		w := l.wantUpgrade
		l.interlock.Unlock()
		if w {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Second upgrade must fail immediately, releasing b's read hold —
	// which is exactly what lets the first upgrade complete.
	if failed := l.ReadToWrite(b); !failed {
		t.Fatal("second upgrade succeeded; both upgrades should deadlock")
	}
	join(t, "first upgrader", first)
	if l.Stats().FailedUpgrades != 1 {
		t.Fatalf("failed upgrades = %d, want 1", l.Stats().FailedUpgrades)
	}
}

func TestDowngradeCannotFail(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Write(th)
	l.WriteToRead(th)
	if l.Readers() != 1 {
		t.Fatalf("readers after downgrade = %d, want 1", l.Readers())
	}
	// Other readers can now share.
	other := sched.New("o")
	if !l.TryRead(other) {
		t.Fatal("TryRead failed after downgrade")
	}
	l.Done(other)
	l.Done(th)
	if l.Stats().Downgrades != 1 {
		t.Fatal("downgrade not counted")
	}
}

func TestDowngradeWakesWaitingReaders(t *testing.T) {
	l := New(true)
	w := sched.New("w")
	l.Write(w)
	var got atomic.Int32
	readers := []*sched.Thread{
		sched.Go("r1", func(self *sched.Thread) { l.Read(self); got.Add(1); l.Done(self) }),
		sched.Go("r2", func(self *sched.Thread) { l.Read(self); got.Add(1); l.Done(self) }),
	}
	time.Sleep(10 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("reader acquired while write held")
	}
	l.WriteToRead(w)
	join(t, "readers after downgrade", readers...)
	l.Done(w)
}

func TestTryWrite(t *testing.T) {
	l := New(false)
	a, b := sched.New("a"), sched.New("b")
	if !l.TryWrite(a) {
		t.Fatal("TryWrite failed on free lock")
	}
	if l.TryWrite(b) {
		t.Fatal("TryWrite succeeded on write-held lock")
	}
	if l.TryRead(b) {
		t.Fatal("TryRead succeeded on write-held lock")
	}
	l.Done(a)
	l.Read(a)
	if l.TryWrite(b) {
		t.Fatal("TryWrite succeeded on read-held lock")
	}
	if !l.TryRead(b) {
		t.Fatal("TryRead failed on read-held lock")
	}
	l.Done(a)
	l.Done(b)
}

func TestTryReadToWriteKeepsReadLockOnRefusal(t *testing.T) {
	// Unlike ReadToWrite, the try variant "does not drop the read lock if
	// the upgrade would deadlock".
	l := New(true)
	a, b := sched.New("a"), sched.New("b")
	l.Read(a)
	l.Read(b)
	done := make(chan struct{})
	up := sched.Go("up", func(self *sched.Thread) {
		if failed := l.ReadToWrite(a); failed {
			t.Error("first upgrade failed")
		}
		close(done)
		l.Done(a)
	})
	for {
		l.interlock.Lock()
		w := l.wantUpgrade
		l.interlock.Unlock()
		if w {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if l.TryReadToWrite(b) {
		t.Fatal("TryReadToWrite succeeded against a pending upgrade")
	}
	if l.Readers() == 0 {
		t.Fatal("TryReadToWrite dropped the read hold on refusal")
	}
	l.Done(b) // now the first upgrade can complete
	join(t, "upgrader", up)
	<-done
}

func TestTryReadToWriteSoloSucceeds(t *testing.T) {
	l := New(false)
	th := sched.New("t")
	l.Read(th)
	if !l.TryReadToWrite(th) {
		t.Fatal("solo TryReadToWrite failed")
	}
	if !l.HeldForWrite() {
		t.Fatal("not write-held after try-upgrade")
	}
	l.Done(th)
}

func TestRecursiveWriteAcquisition(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Write(th)
	l.SetRecursive(th)
	l.Write(th) // recursive; would deadlock without the option
	l.Write(th)
	l.Done(th)
	l.Done(th)
	l.ClearRecursive(th)
	l.Done(th)
	if l.HeldForWrite() {
		t.Fatal("lock still held after full release")
	}
}

func TestRecursiveReadBypassesPendingWriter(t *testing.T) {
	// "the holder's requests are not blocked by a pending write or
	// upgrade request" — the property that lets the holder drain its
	// recursion so the writer can eventually proceed.
	l := New(true)
	holder := sched.New("holder")
	l.Write(holder)
	l.SetRecursive(holder)
	l.WriteToRead(holder) // downgrade to recursive read

	writerDone := make(chan struct{})
	writer := sched.Go("writer", func(self *sched.Thread) {
		l.Write(self)
		close(writerDone)
		l.Done(self)
	})
	for {
		l.interlock.Lock()
		w := l.wantWrite
		l.interlock.Unlock()
		if w {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// An ordinary reader would now block; the recursive holder must not.
	acquired := make(chan struct{})
	go func() {
		l.Read(holder)
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("recursive holder's read blocked by pending writer")
	}
	l.Done(holder) // inner read
	l.ClearRecursive(holder)
	l.Done(holder) // outer read
	join(t, "writer", writer)
	<-writerDone
}

func TestSetRecursiveRequiresWriteHold(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Read(th)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRecursive on read-held lock did not panic")
		}
		l.Done(th)
	}()
	l.SetRecursive(th)
}

func TestRecursiveWriteAfterDowngradeProhibited(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Write(th)
	l.SetRecursive(th)
	l.WriteToRead(th)
	defer func() {
		if recover() == nil {
			t.Fatal("recursive write after downgrade did not panic")
		}
		l.ClearRecursive(th)
		l.Done(th)
	}()
	l.Write(th)
}

func TestClearRecursiveValidation(t *testing.T) {
	l := New(true)
	th, other := sched.New("t"), sched.New("o")
	l.Write(th)
	l.SetRecursive(th)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ClearRecursive by non-holder did not panic")
			}
		}()
		l.ClearRecursive(other)
	}()
	l.Write(th) // depth 1
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ClearRecursive with outstanding depth did not panic")
			}
		}()
		l.ClearRecursive(th)
	}()
	l.Done(th)
	l.ClearRecursive(th)
	l.Done(th)
}

func TestDoneOnUnheldLockPanics(t *testing.T) {
	l := New(false)
	defer func() {
		if recover() == nil {
			t.Fatal("Done on unheld lock did not panic")
		}
	}()
	l.Done(nil)
}

func TestSleepOptionActuallySleeps(t *testing.T) {
	l := New(true)
	w := sched.New("w")
	l.Write(w)
	reader := sched.Go("r", func(self *sched.Thread) {
		l.Read(self)
		l.Done(self)
	})
	// The reader should block (not spin): wait for a sleep to register.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Sleeps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleepable lock never slept")
		}
		time.Sleep(time.Millisecond)
	}
	l.Done(w)
	join(t, "sleeping reader", reader)
	if reader.Blocks() == 0 {
		t.Fatal("reader thread never blocked")
	}
}

func TestSpinModeNeverBlocks(t *testing.T) {
	l := New(false)
	w := sched.New("w")
	l.Write(w)
	reader := sched.Go("r", func(self *sched.Thread) {
		l.Read(self)
		l.Done(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Spins == 0 {
		if time.Now().After(deadline) {
			t.Fatal("spin lock never spun")
		}
		time.Sleep(time.Millisecond)
	}
	l.Done(w)
	join(t, "spinning reader", reader)
	if reader.Blocks() != 0 {
		t.Fatal("non-sleepable lock blocked a thread")
	}
	if l.Stats().Sleeps != 0 {
		t.Fatal("non-sleepable lock recorded sleeps")
	}
}

func TestMach25UpgradeBugReproduction(t *testing.T) {
	// With the compat flag set, lock_try_read_to_write blocks (sleeps)
	// even though the lock's Sleep option is off.
	l := New(false)
	l.Mach25UpgradeBug = true
	other := sched.New("other")
	l.Read(other)

	up := sched.Go("up", func(self *sched.Thread) {
		l.Read(self)
		if !l.TryReadToWrite(self) {
			t.Error("try-upgrade refused with no competing upgrade")
		}
		l.Done(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for up.Blocks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("buggy try-upgrade never blocked (bug not reproduced)")
		}
		time.Sleep(time.Millisecond)
	}
	if l.Stats().Sleeps == 0 {
		t.Fatal("no sleep recorded on non-sleepable lock (bug not reproduced)")
	}
	l.Done(other)
	join(t, "buggy upgrader", up)
}

func TestWriterNotStarvedStress(t *testing.T) {
	// A flood of readers must not starve a writer (writer priority).
	l := New(true)
	stop := make(chan struct{})
	var readerOps atomic.Int64
	var readers []*sched.Thread
	for i := 0; i < 4; i++ {
		readers = append(readers, sched.Go("r", func(self *sched.Thread) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Read(self)
				readerOps.Add(1)
				l.Done(self)
			}
		}))
	}
	writer := sched.Go("w", func(self *sched.Thread) {
		for i := 0; i < 50; i++ {
			l.Write(self)
			l.Done(self)
		}
	})
	join(t, "writer through reader flood", writer)
	close(stop)
	join(t, "readers", readers...)
	if l.Stats().WriteAcquisitions != 50 {
		t.Fatalf("write acquisitions = %d, want 50", l.Stats().WriteAcquisitions)
	}
}

func TestMixedStressInvariant(t *testing.T) {
	// Readers record a snapshot-consistent pair; writers update both
	// halves. Any torn read proves exclusion failed.
	l := New(true)
	var a, b int64
	var violations atomic.Int64
	var threads []*sched.Thread
	for i := 0; i < 3; i++ {
		threads = append(threads, sched.Go("w", func(self *sched.Thread) {
			for j := 0; j < 200; j++ {
				l.Write(self)
				a++
				b++
				l.Done(self)
			}
		}))
		threads = append(threads, sched.Go("r", func(self *sched.Thread) {
			for j := 0; j < 200; j++ {
				l.Read(self)
				if a != b {
					violations.Add(1)
				}
				l.Done(self)
			}
		}))
		threads = append(threads, sched.Go("u", func(self *sched.Thread) {
			for j := 0; j < 50; j++ {
				l.Read(self)
				if failed := l.ReadToWrite(self); failed {
					continue // read hold gone; restart
				}
				a++
				b++
				l.WriteToRead(self)
				if a != b {
					violations.Add(1)
				}
				l.Done(self)
			}
		}))
	}
	join(t, "mixed stress", threads...)
	if violations.Load() != 0 {
		t.Fatalf("%d exclusion violations", violations.Load())
	}
	if a != b {
		t.Fatalf("final torn state: a=%d b=%d", a, b)
	}
}

func TestStatsAccounting(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Read(th)
	l.Done(th)
	l.Write(th)
	l.WriteToRead(th)
	l.ReadToWrite(th)
	l.Done(th)
	s := l.Stats()
	if s.ReadAcquisitions != 1 || s.WriteAcquisitions != 1 || s.Downgrades != 1 || s.Upgrades != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentTryOpsNeverCorrupt(t *testing.T) {
	l := New(false)
	var wg sync.WaitGroup
	var held atomic.Int32 // +1 per reader, +1000 per writer
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := sched.New("t")
			for j := 0; j < 500; j++ {
				if i%2 == 0 {
					if l.TryRead(th) {
						if held.Add(1) >= 1000 {
							t.Error("reader admitted during write")
						}
						held.Add(-1)
						l.Done(th)
					}
				} else {
					if l.TryWrite(th) {
						if held.Add(1000) != 1000 {
							t.Error("writer admitted with others inside")
						}
						held.Add(-1000)
						l.Done(th)
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

package cxlock

import (
	"fmt"
	"testing"
	"time"

	"machlock/internal/sched"
	"machlock/internal/trace"
)

func TestStatRWCountsAndHistograms(t *testing.T) {
	l := NewStatRW("test.statrw", true)
	if l.Name() != "test.statrw" {
		t.Fatalf("name = %q", l.Name())
	}
	th := sched.New("t")
	l.Read(th)
	l.Done(th)
	l.Write(th)
	l.WriteToRead(th)
	l.Done(th)
	r := l.Report()
	if r.ReadAcquisitions != 1 || r.WriteAcquisitions != 1 {
		t.Fatalf("acquisitions = %d/%d, want 1/1", r.ReadAcquisitions, r.WriteAcquisitions)
	}
	if r.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", r.Downgrades)
	}
	if r.Contended != 0 || r.ContentionRate != 0 {
		t.Fatalf("uncontended lock reports contention %d (%f)", r.Contended, r.ContentionRate)
	}
	// Both full cycles ended an occupancy: two hold samples, nonzero mean.
	if r.MeanHoldNs <= 0 {
		t.Fatalf("mean hold = %f, want > 0", r.MeanHoldNs)
	}
}

func TestStatRWContendedWait(t *testing.T) {
	l := NewStatRW("test.statrw.contended", true)
	w := sched.New("w")
	l.Write(w)
	readers := make([]*sched.Thread, 4)
	for i := range readers {
		readers[i] = sched.Go(fmt.Sprintf("r%d", i), func(self *sched.Thread) {
			l.Read(self)
			l.Done(self)
		})
	}
	// Wait for all readers to be asleep on the lock so their acquisitions
	// count as contended.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Sleeps < int64(len(readers)) {
		if time.Now().After(deadline) {
			t.Fatal("readers never slept")
		}
		time.Sleep(time.Millisecond)
	}
	l.Done(w)
	for _, r := range readers {
		r.Join()
	}
	r := l.Report()
	if r.Contended != int64(len(readers)) {
		t.Fatalf("contended = %d, want %d", r.Contended, len(readers))
	}
	if r.ContentionRate <= 0 {
		t.Fatal("contention rate not computed")
	}
	if r.MeanWaitNs <= 0 || r.MaxWaitNs <= 0 {
		t.Fatalf("wait histogram empty: mean=%f max=%d", r.MeanWaitNs, r.MaxWaitNs)
	}
}

// TestStatRWFeedsTraceClass checks the registry side: a StatRW's traffic
// shows up in its registered class profile when tracing is enabled.
func TestStatRWFeedsTraceClass(t *testing.T) {
	trace.Enable()
	defer trace.Disable()
	l := NewStatRW("test.statrw.traced", true)
	c := trace.Lookup("cxlock", "test.statrw.traced")
	if c == nil {
		t.Fatal("class not registered")
	}
	// The registry dedups by name, so the class (and its counters) survive
	// earlier runs of this test in the same process: assert on the delta.
	before := c.Snapshot().Acquisitions
	th := sched.New("t")
	l.Write(th)
	l.Done(th)
	if got := c.Snapshot().Acquisitions - before; got != 1 {
		t.Fatalf("class acquisitions delta = %d, want 1", got)
	}
}

package cxlock

import (
	"sync/atomic"

	"machlock/internal/stats"
	"machlock/internal/trace"
)

// rwInstr is the per-instance timing sink a StatRW installs into its
// embedded Lock: the complex-lock counterpart of StatLock's accounting.
// The Lock's own acquisition/upgrade/sleep counters already live in
// lockStats; this adds what those lack — contention counts and hold/wait
// time histograms.
type rwInstr struct {
	contended atomic.Int64
	hold      stats.Histogram
	wait      stats.Histogram
}

// acquired records one granted hold.
func (s *rwInstr) acquired(contended bool, waitNs int64) {
	if contended {
		s.contended.Add(1)
		s.wait.Observe(waitNs)
	}
}

// released records one release; holdNs < 0 means no occupancy sample ended
// (a reader left while others remain).
func (s *rwInstr) released(holdNs int64) {
	if holdNs >= 0 {
		s.hold.Observe(holdNs)
	}
}

// StatRW is the statistics variant of the complex lock, symmetric to
// splock.StatLock: a named readers/writer lock whose per-instance
// statistics — contention counts, hold-time and wait-time histograms on
// top of the Lock's own acquisition counters — are always on, and whose
// name is registered as a complex class with the process-wide
// observability layer. Use Lock where the two clock reads per critical
// section matter and StatRW while hunting contention.
//
// StatRW embeds Lock, so the full complex-lock protocol (Read/Write/Done,
// upgrades, downgrades, Sleep and Recursive options) is available
// directly. Hold time is lock occupancy: a read-mode sample spans from
// the first reader in to the last reader out.
type StatRW struct {
	name string
	Lock
}

// NewStatRW creates a named statistics complex lock; canSleep enables the
// Sleep option as in New.
func NewStatRW(name string, canSleep bool) *StatRW {
	s := &StatRW{name: name}
	s.Lock.Init(canSleep)
	s.Lock.stat = &rwInstr{}
	s.Lock.class = trace.NewClass("cxlock", name, trace.KindComplex)
	return s
}

// Name returns the lock's name.
func (s *StatRW) Name() string { return s.name }

// RWReport is a snapshot of a StatRW's accounting, merging the Lock's
// acquisition counters with the instance's timing histograms.
type RWReport struct {
	Name              string
	ReadAcquisitions  int64
	WriteAcquisitions int64
	Contended         int64
	// ContentionRate is contended acquisitions / total acquisitions.
	ContentionRate float64
	MeanHoldNs     float64
	P99HoldNs      int64
	MeanWaitNs     float64
	MaxWaitNs      int64
	Sleeps         int64
	Spins          int64
	Upgrades       int64
	FailedUpgrades int64
	Downgrades     int64
}

// Report returns the lock's statistics.
func (s *StatRW) Report() RWReport {
	ls := s.Lock.Stats()
	in := s.Lock.stat
	r := RWReport{
		Name:              s.name,
		ReadAcquisitions:  ls.ReadAcquisitions,
		WriteAcquisitions: ls.WriteAcquisitions,
		Contended:         in.contended.Load(),
		MeanHoldNs:        in.hold.Mean(),
		P99HoldNs:         in.hold.Quantile(0.99),
		MeanWaitNs:        in.wait.Mean(),
		MaxWaitNs:         in.wait.Max(),
		Sleeps:            ls.Sleeps,
		Spins:             ls.Spins,
		Upgrades:          ls.Upgrades,
		FailedUpgrades:    ls.FailedUpgrades,
		Downgrades:        ls.Downgrades,
	}
	if total := r.ReadAcquisitions + r.WriteAcquisitions; total > 0 {
		r.ContentionRate = float64(r.Contended) / float64(total)
	}
	return r
}

package cxlock

import (
	"sync/atomic"
	"time"
	"unsafe"

	"machlock/internal/core/splock"
	"machlock/internal/machsim/simhook"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// This file implements the ReaderBias option: a BRAVO-style visible-readers
// slot table (Dice & Kogan, "BRAVO: Biased Locking for Reader-Writer
// Locks") bolted onto the paper's complex lock.
//
// The paper's protocol funnels every reader through the central interlock,
// so read acquisitions of a hot lock serialize on one cache line — the
// coarse-grained bottleneck the Mach design accepts. With the ReaderBias
// option a reader instead PUBLISHES itself with a single uncontended
// compare-and-swap into a per-lock slot table and never touches the
// interlock:
//
//	reader:  if bias armed: CAS(slot, nil, self); recheck bias armed;
//	         armed  -> read hold granted (fast path)
//	         revoked-> self-evict (clear slot) and take the slow path
//	release: if slot == self: clear slot (fast path)
//
// Writers REVOKE the bias: under the interlock they disarm the bias flag,
// then extend the paper's reader-drain loop to also wait for every slot to
// empty. The publish-then-recheck on the reader side and the disarm-then-
// scan on the writer side guarantee that a writer never runs concurrently
// with a fast-path reader: any reader the writer's scan misses observed
// the disarmed flag and self-evicted without ever holding the lock.
//
// After a revocation the bias stays disarmed for an adaptive cooldown
// (a multiple of the revocation's drain time, as in BRAVO), so a write-
// heavy phase pays the slot scan only once; slow-path readers re-arm the
// bias once the cooldown expires and no write request is outstanding.
//
// The fast path requires a thread identity (slots are owned and cleared
// exclusively by the publishing thread; nil-identity readers always take
// the slow path) and is disabled while per-instance or class timing
// instrumentation is active, because hold-occupancy sampling is accounted
// under the interlock. Everything else — writer priority, Sleep and
// Recursive, upgrade/downgrade, and the try variants — keeps the paper's
// semantics: those paths all go through the interlock, where the slot
// table is just one more reader population for writers to drain.

// Options configures a complex lock at initialization, replacing the
// scattered New(canSleep)/SetSleepable/SetClass mutators (the paper's
// lock_init never allowed post-construction mutation either).
type Options struct {
	// Sleep enables the Sleep option: waiters block via the event-wait
	// protocol instead of spinning (lock_init's can_sleep).
	Sleep bool
	// Recursive permits SetRecursive on this lock. Locks built through
	// Options default to non-recursive — the paper's verdict is that
	// recursive locking is a design trap (Section 7.1, experiment E11).
	Recursive bool
	// ReaderBias enables the BRAVO-style visible-readers fast path.
	ReaderBias bool
	// Name labels the lock for reports; Stats-only unless Class is set.
	Name string
	// Class registers the lock with the observability layer.
	Class *trace.Class
	// SpinPark selects the spin-then-park waiting strategy: a waiter
	// with a thread identity spins for this many rounds (interlock
	// released between attempts) before committing to a block, covering
	// short occupancies without a context switch while still yielding
	// the processor for long ones. A positive value implies the Sleep
	// option (parking is sleeping). Zero keeps the classic behaviour:
	// sleepable locks block on the first round, others spin forever.
	SpinPark int
	// Interlock selects the algorithm guarding the lock's internal
	// state (the paper's simple-lock interlock). The zero value is the
	// default TASTTAS spin lock; Queue or Adaptive make sense for
	// central locks whose interlock itself is a contention point.
	Interlock splock.Policy
}

// NewWith creates a complex lock from Options.
func NewWith(o Options) *Lock {
	l := &Lock{}
	l.InitWith(o)
	return l
}

// InitWith initializes an embedded lock value from Options. It must not be
// called on a lock in use.
func (l *Lock) InitWith(o Options) {
	l.canSleep = o.Sleep || o.SpinPark > 0
	l.spinPark = int32(o.SpinPark)
	l.norecurse = !o.Recursive
	l.name = o.Name
	l.class = o.Class
	if o.Interlock != splock.TASTTAS {
		l.interlock.InitWith(splock.Opts{Algorithm: o.Interlock, Name: o.Name + ".interlock"})
	}
	if o.ReaderBias {
		l.bias = newBiasTable()
	}
}

// Name returns the label given at initialization ("" for legacy locks).
func (l *Lock) Name() string { return l.name }

// biasSlots is the visible-readers table size; a power of two so the slot
// index is a mask. 64 slots is comfortably above the reader parallelism a
// host offers, keeping hash collisions (which merely cost the slow path)
// rare.
const biasSlots = 64

// Bias cooldown policy: after a revocation the bias stays disarmed for
// biasCooldownMult times the drain time the writer paid, with a floor, so
// a steady writer stream settles into the unbiased protocol instead of
// paying a revocation scan per write (BRAVO's N-times-latency rule).
const (
	biasCooldownMult  = 9
	biasMinCooldownNs = int64(10 * time.Microsecond)
)

// biasSlot is one visible-reader entry, padded so concurrent readers in
// neighbouring slots never share a cache line — the whole point of the
// table over a central counter.
type biasSlot struct {
	owner atomic.Pointer[sched.Thread]
	// reads counts fast-path acquisitions through this slot, so Stats()
	// sees biased readers; same line as owner, which only its publishing
	// thread touches on the fast path.
	reads atomic.Int64
	_     [48]byte
}

// biasTable is the per-lock reader-bias state, allocated only for locks
// initialized with the ReaderBias option.
type biasTable struct {
	// armed gates the fast path. Disarmed by writers under the interlock,
	// re-armed by slow-path readers after the cooldown.
	armed atomic.Bool
	// revokedAt is the revocation timestamp (ns) of the in-progress
	// revocation; 0 when none. Consumed by the drain winner to size the
	// cooldown.
	revokedAt atomic.Int64
	// rebiasAt is the earliest time (ns) a slow-path reader may re-arm.
	rebiasAt atomic.Int64
	// revocations counts revocation events (for Stats).
	revocations atomic.Int64
	slots       [biasSlots]biasSlot
}

func newBiasTable() *biasTable {
	b := &biasTable{}
	b.armed.Store(true)
	return b
}

// slotIndex hashes a thread identity to its slot: Fibonacci mix of the
// handle's address, stable for the Read/Done pairing and well distributed
// across threads.
func slotIndex(t *sched.Thread) int {
	// Under machsim the handle's address would make slot assignment (and
	// so collision-induced slow paths) vary run to run; the harness's
	// stable thread index keeps schedules byte-replayable.
	if i, ok := simhook.Index(t); ok {
		return i & (biasSlots - 1)
	}
	h := uintptr(unsafe.Pointer(t))
	h = (h >> 4) * 0x9E3779B97F4A7C15
	return int((h >> 40) & (biasSlots - 1))
}

// readFast attempts the biased read fast path; on true the caller holds
// the lock for reading without having touched the interlock.
func (l *Lock) readFast(t *sched.Thread) bool {
	b := l.bias
	if b == nil || t == nil || !b.armed.Load() || l.instrOn() {
		return false
	}
	s := &b.slots[slotIndex(t)]
	// An occupied slot is a hash collision — or this thread's own nested
	// read, which must go to readCount so each hold stays releasable.
	if s.owner.Load() != nil || !s.owner.CompareAndSwap(nil, t) {
		return false
	}
	// The publish-to-recheck window is THE critical interleaving of the
	// BRAVO protocol: a writer revoking here must either see our slot in
	// its scan or be seen by our recheck. Let machsim preempt us in it.
	simhook.Yield(simhook.CxBiasPublish, l)
	if !b.armed.Load() {
		// A writer revoked between our publish and this recheck. It may
		// already have scanned past our slot, so we never held the lock:
		// self-evict and queue behind the writer on the slow path.
		s.owner.Store(nil)
		l.biasWake()
		return false
	}
	s.reads.Add(1)
	simhook.Note(simhook.CxBiasReadGrant, l, 0)
	return true
}

// doneFast releases a fast-path read hold, if the caller has one; only the
// publishing thread ever clears its slot, so owner==t is proof of a biased
// hold.
func (l *Lock) doneFast(t *sched.Thread) bool {
	b := l.bias
	if b == nil || t == nil {
		return false
	}
	s := &b.slots[slotIndex(t)]
	if s.owner.Load() != t {
		return false
	}
	s.owner.Store(nil)
	simhook.Note(simhook.CxBiasRelease, l, 0)
	if !b.armed.Load() {
		// Revocation in progress: the draining writer may be asleep on
		// the lock event waiting for this very slot.
		l.biasWake()
	}
	return true
}

// biasWake nudges waiters through the interlock; called by fast-path
// readers only when they observe a revocation in progress.
func (l *Lock) biasWake() {
	l.interlock.Lock()
	l.wakeupLocked()
	l.interlock.Unlock()
}

// revokeBiasLocked disarms the bias ahead of a write-side drain; interlock
// held. Idempotent: only the disarming caller records the revocation.
func (l *Lock) revokeBiasLocked() {
	b := l.bias
	if b == nil || !b.armed.Load() {
		return
	}
	b.armed.Store(false)
	b.revokedAt.Store(nowNs())
	b.revocations.Add(1)
	simhook.Note(simhook.CxBiasRevoke, l, 0)
	l.class.BiasRevoked()
}

// biasReadersVisible reports whether any slot holds a published reader;
// part of the write-side drain condition alongside readCount. Interlock
// held (the scan itself is plain atomic loads).
func (l *Lock) biasReadersVisible() bool {
	b := l.bias
	if b == nil {
		return false
	}
	for i := range b.slots {
		if b.slots[i].owner.Load() != nil {
			return true
		}
	}
	return false
}

// noteBiasDrainedLocked ends a revocation: the write-side drain saw the
// table empty. Sizes the re-arm cooldown from the drain time actually
// paid. Interlock held.
func (l *Lock) noteBiasDrainedLocked() {
	b := l.bias
	if b == nil {
		return
	}
	if start := b.revokedAt.Swap(0); start != 0 {
		now := nowNs()
		cooldown := (now - start) * biasCooldownMult
		if cooldown < biasMinCooldownNs {
			cooldown = biasMinCooldownNs
		}
		b.rebiasAt.Store(now + cooldown)
		simhook.Note(simhook.CxBiasDrained, l, 0)
	}
}

// maybeRearmLocked re-arms the bias from the read slow path once the
// cooldown has expired and no write or upgrade request is outstanding.
// Interlock held.
func (l *Lock) maybeRearmLocked() {
	b := l.bias
	if b == nil || b.armed.Load() || l.wantWrite || l.wantUpgrade {
		return
	}
	if nowNs() >= b.rebiasAt.Load() {
		b.armed.Store(true)
		simhook.Note(simhook.CxBiasRearm, l, 0)
	}
}

// migrateBiasHoldLocked converts the caller's fast-path read hold (if any)
// into a conventional readCount hold, so upgrade paths can run the
// paper's protocol on it. Interlock held. The writer-side drain counts a
// hold in either representation, so the hold never becomes invisible.
func (l *Lock) migrateBiasHoldLocked(t *sched.Thread) {
	b := l.bias
	if b == nil || t == nil {
		return
	}
	s := &b.slots[slotIndex(t)]
	if s.owner.Load() == t {
		s.owner.Store(nil)
		l.readCount++
	}
}

// biasReadCount sums fast-path read acquisitions across the slot table.
func (l *Lock) biasReadCount() int64 {
	b := l.bias
	if b == nil {
		return 0
	}
	var n int64
	for i := range b.slots {
		n += b.slots[i].reads.Load()
	}
	return n
}

// ReaderBiased reports whether the ReaderBias option is configured on this
// lock (regardless of whether the bias is currently armed or revoked).
func (l *Lock) ReaderBiased() bool { return l.bias != nil }

// biasArmed reports whether the fast path is currently armed; advisory,
// for tests.
func (l *Lock) biasArmed() bool {
	b := l.bias
	return b != nil && b.armed.Load()
}

package cxlock

import (
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/sched"
)

// recordingObserver counts events for the observer-hook tests.
type recordingObserver struct {
	acquired, released, waiting, doneWaiting atomic.Int64
}

func (r *recordingObserver) Acquired(*Lock, *sched.Thread)    { r.acquired.Add(1) }
func (r *recordingObserver) Released(*Lock, *sched.Thread)    { r.released.Add(1) }
func (r *recordingObserver) Waiting(*Lock, *sched.Thread)     { r.waiting.Add(1) }
func (r *recordingObserver) DoneWaiting(*Lock, *sched.Thread) { r.doneWaiting.Add(1) }

func TestObserverSeesAcquireReleaseBalance(t *testing.T) {
	rec := &recordingObserver{}
	SetObserver(rec)
	defer SetObserver(nil)

	l := New(true)
	th := sched.New("t")
	l.Read(th)
	l.Done(th)
	l.Write(th)
	l.WriteToRead(th) // no hold-count change
	l.Done(th)
	l.TryRead(th)
	l.Done(th)
	if a, r := rec.acquired.Load(), rec.released.Load(); a != 3 || r != 3 {
		t.Fatalf("acquired=%d released=%d, want 3/3 (every successful acquisition must balance a release)", a, r)
	}
}

func TestObserverSeesFailedUpgradeAsRelease(t *testing.T) {
	rec := &recordingObserver{}
	SetObserver(rec)
	defer SetObserver(nil)

	l := New(true)
	a, b := sched.New("a"), sched.New("b")
	l.Read(a)
	l.Read(b)
	done := make(chan struct{})
	up := sched.Go("up", func(self *sched.Thread) {
		l.ReadToWrite(a)
		close(done)
		l.Done(a)
	})
	for {
		l.interlock.Lock()
		w := l.wantUpgrade
		l.interlock.Unlock()
		if w {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if failed := l.ReadToWrite(b); !failed {
		t.Fatal("second upgrade should fail")
	}
	// b's read hold was released by the failed upgrade: observer must
	// have seen it.
	if rec.released.Load() == 0 {
		t.Fatal("failed upgrade not reported as a release")
	}
	up.Join()
	<-done
}

func TestObserverWaitingEvents(t *testing.T) {
	rec := &recordingObserver{}
	SetObserver(rec)
	defer SetObserver(nil)

	l := New(true)
	w := sched.New("w")
	l.Write(w)
	reader := sched.Go("r", func(self *sched.Thread) {
		l.Read(self)
		l.Done(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for rec.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("observer never saw the wait")
		}
		time.Sleep(time.Millisecond)
	}
	l.Done(w)
	reader.Join()
	if rec.doneWaiting.Load() == 0 {
		t.Fatal("observer never saw the wait end")
	}
}

func TestObserverIgnoresAnonymous(t *testing.T) {
	rec := &recordingObserver{}
	SetObserver(rec)
	defer SetObserver(nil)
	l := New(false)
	l.Read(nil)
	l.Done(nil)
	if rec.acquired.Load() != 0 || rec.released.Load() != 0 {
		t.Fatal("anonymous operations leaked to observer")
	}
}

func TestRecursiveHolderAccessor(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	if l.RecursiveHolder() != nil {
		t.Fatal("fresh lock has a recursive holder")
	}
	l.Write(th)
	l.SetRecursive(th)
	if l.RecursiveHolder() != th {
		t.Fatal("holder not reported")
	}
	// Re-setting by the same holder is idempotent.
	l.SetRecursive(th)
	l.ClearRecursive(th)
	l.Done(th)
}

func TestSetRecursiveByOtherThreadPanics(t *testing.T) {
	l := New(true)
	a, b := sched.New("a"), sched.New("b")
	l.Write(a)
	l.SetRecursive(a)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
		l.ClearRecursive(a)
		l.Done(a)
	}()
	l.SetRecursive(b)
}

func TestSetRecursiveNilThreadPanics(t *testing.T) {
	l := New(true)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.SetRecursive(nil)
}

func TestTryOpsOnRecursiveHolder(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Write(th)
	l.SetRecursive(th)

	// TryWrite by the holder succeeds recursively.
	if !l.TryWrite(th) {
		t.Fatal("recursive TryWrite failed")
	}
	l.Done(th) // depth back to 0

	// TryRead by the holder bypasses everything.
	if !l.TryRead(th) {
		t.Fatal("recursive TryRead failed")
	}
	// TryReadToWrite by the holder folds into recursion.
	if !l.TryReadToWrite(th) {
		t.Fatal("recursive TryReadToWrite failed")
	}
	l.Done(th) // depth
	l.ClearRecursive(th)
	l.Done(th) // write

	// After a downgrade, the holder's write-side try operations refuse.
	l.Write(th)
	l.SetRecursive(th)
	l.WriteToRead(th)
	if l.TryWrite(th) {
		t.Fatal("TryWrite after downgrade succeeded")
	}
	l.Read(th) // recursive read is fine
	if l.TryReadToWrite(th) {
		t.Fatal("TryReadToWrite after downgrade succeeded")
	}
	l.Done(th)
	l.ClearRecursive(th)
	l.Done(th)
}

func TestUpgradeOfRecursiveReadAfterDowngradePanics(t *testing.T) {
	l := New(true)
	th := sched.New("t")
	l.Write(th)
	l.SetRecursive(th)
	l.WriteToRead(th)
	l.Read(th) // recursive read
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
		l.Done(th)
		l.ClearRecursive(th)
		l.Done(th)
	}()
	l.ReadToWrite(th)
}

func TestTryReadToWriteSpinsForReadersWhenNotSleepable(t *testing.T) {
	// The correct (non-Mach-2.5) behaviour: with Sleep off, the upgrade
	// spins for the other readers rather than blocking.
	l := New(false)
	other := sched.New("other")
	l.Read(other)
	done := make(chan struct{})
	up := sched.Go("up", func(self *sched.Thread) {
		l.Read(self)
		if !l.TryReadToWrite(self) {
			t.Error("try-upgrade refused")
		}
		close(done)
		l.Done(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Spins == 0 {
		if time.Now().After(deadline) {
			t.Fatal("upgrade never spun")
		}
		time.Sleep(time.Millisecond)
	}
	if up.Blocks() != 0 {
		t.Fatal("non-sleepable upgrade blocked (Mach 2.5 bug without the flag)")
	}
	l.Done(other)
	up.Join()
	<-done
}

func TestBusyWaitSpinsBurnCPU(t *testing.T) {
	l := New(false)
	l.BusyWait = true
	w := sched.New("w")
	l.Write(w)
	reader := sched.Go("r", func(self *sched.Thread) {
		l.Read(self)
		l.Done(self)
	})
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Spins == 0 {
		if time.Now().After(deadline) {
			t.Fatal("busy-wait reader never spun")
		}
		time.Sleep(time.Millisecond)
	}
	l.Done(w)
	reader.Join()
}

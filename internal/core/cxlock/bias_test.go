package cxlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/sched"
)

// biasedLock builds the standard lock under test: reader-biased, sleepable.
func biasedLock() *Lock {
	return NewWith(Options{Sleep: true, ReaderBias: true, Name: "test.bias"})
}

func TestBiasFastPathCounts(t *testing.T) {
	// A lone biased reader must take the fast path (BiasedReads) and still
	// appear in ReadAcquisitions — the stats contract.
	l := biasedLock()
	self := sched.New("r")
	for i := 0; i < 10; i++ {
		l.Read(self)
		l.Done(self)
	}
	s := l.Stats()
	if s.BiasedReads != 10 {
		t.Fatalf("BiasedReads = %d, want 10", s.BiasedReads)
	}
	if s.ReadAcquisitions != 10 {
		t.Fatalf("ReadAcquisitions = %d, want 10 (biased reads must count)", s.ReadAcquisitions)
	}
}

func TestBiasNilThreadTakesSlowPath(t *testing.T) {
	l := biasedLock()
	l.Read(nil)
	l.Done(nil)
	s := l.Stats()
	if s.BiasedReads != 0 {
		t.Fatalf("BiasedReads = %d, want 0 for nil identity", s.BiasedReads)
	}
	if s.ReadAcquisitions != 1 {
		t.Fatalf("ReadAcquisitions = %d, want 1", s.ReadAcquisitions)
	}
}

func TestWriterRevokesBiasAndExcludesReaders(t *testing.T) {
	// A writer must drain a published fast-path reader before acquiring,
	// and the revocation must be recorded.
	l := biasedLock()
	reader := sched.New("r")
	l.Read(reader) // fast path: occupies a slot

	var writerIn atomic.Bool
	w := sched.Go("w", func(self *sched.Thread) {
		l.Write(self)
		writerIn.Store(true)
		l.Done(self)
	})
	time.Sleep(5 * time.Millisecond)
	if writerIn.Load() {
		t.Fatal("writer acquired while a biased reader held the lock")
	}
	l.Done(reader) // fast-path release observes the revocation, wakes writer
	w.Join()
	if !writerIn.Load() {
		t.Fatal("writer never acquired")
	}
	if s := l.Stats(); s.BiasRevocations == 0 {
		t.Fatal("revocation not recorded")
	}
}

func TestBiasSlotCollisionFallsBackToSlowPath(t *testing.T) {
	// Occupy a reader's slot with a colliding hold; the reader must fall
	// back to the interlocked slow path, not corrupt the foreign slot.
	l := biasedLock()
	a := sched.New("a")
	l.Read(a) // a publishes in its slot

	// Forge a second thread into a's slot position by direct table write:
	// package-internal test of the collision path without relying on
	// allocator addresses colliding.
	b := sched.New("b")
	idxA, idxB := slotIndex(a), slotIndex(b)
	if idxA != idxB {
		// Simulate the collision: park a's hold where b hashes.
		l.bias.slots[idxA].owner.Store(nil)
		l.bias.slots[idxB].owner.Store(a)
	}

	l.Read(b) // collision: must take the slow path
	s := l.Stats()
	if s.BiasedReads != 1 {
		t.Fatalf("BiasedReads = %d, want 1 (only a's publish)", s.BiasedReads)
	}
	if got := l.Readers(); got != 2 {
		t.Fatalf("Readers = %d, want 2", got)
	}
	l.Done(b) // releases b's slow-path hold (owner of slot is a, not b)
	if got := l.Readers(); got != 1 {
		t.Fatalf("Readers after b done = %d, want 1", got)
	}
	// Restore a's hold to its real slot so Done(a) finds it.
	if idxA != idxB {
		l.bias.slots[idxB].owner.Store(nil)
		l.bias.slots[idxA].owner.Store(a)
	}
	l.Done(a)
	if got := l.Readers(); got != 0 {
		t.Fatalf("Readers after all done = %d, want 0", got)
	}
}

func TestBiasNestedReadSameThreadUsesSlowPath(t *testing.T) {
	// A thread's second concurrent read hold collides with its own slot and
	// must go to readCount, so each hold is independently releasable.
	l := biasedLock()
	self := sched.New("r")
	l.Read(self) // fast path
	l.Read(self) // own-slot collision: slow path
	if got := l.Readers(); got != 2 {
		t.Fatalf("Readers = %d, want 2", got)
	}
	l.Done(self) // releases the fast-path hold (slot owner == self)
	l.Done(self) // releases the readCount hold
	if got := l.Readers(); got != 0 {
		t.Fatalf("Readers = %d, want 0", got)
	}
}

func TestBiasRevocationRacesUpgrade(t *testing.T) {
	// A slow-path reader upgrading while biased readers churn: the upgrade
	// must drain every fast-path hold (slot table) as well as readCount,
	// and the upgrader's own biased hold must be migrated, never lost.
	for round := 0; round < 50; round++ {
		l := biasedLock()
		var inWrite atomic.Int32
		var wg sync.WaitGroup

		wg.Add(1)
		go func() {
			defer wg.Done()
			self := sched.New("up")
			l.Read(self) // may be fast or slow path
			if failed := l.ReadToWrite(self); failed {
				return // lost to a competing upgrade: hold released
			}
			if n := inWrite.Add(1); n != 1 {
				t.Error("upgrade granted concurrently with another writer")
			}
			if l.biasArmed() {
				t.Error("bias armed during exclusive hold")
			}
			inWrite.Add(-1)
			l.Done(self)
		}()
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				self := sched.New("r")
				for j := 0; j < 20; j++ {
					l.Read(self)
					if inWrite.Load() != 0 {
						t.Error("reader admitted during exclusive upgrade hold")
					}
					l.Done(self)
				}
			}()
		}
		wg.Wait()
	}
}

func TestBiasUpgradeFromFastPathHold(t *testing.T) {
	// Upgrade a hold that was granted via the fast path: ReadToWrite must
	// migrate the slot hold into readCount and complete normally.
	l := biasedLock()
	self := sched.New("r")
	l.Read(self)
	if s := l.Stats(); s.BiasedReads != 1 {
		t.Fatalf("setup: read was not fast-path (BiasedReads=%d)", s.BiasedReads)
	}
	if failed := l.ReadToWrite(self); failed {
		t.Fatal("solo upgrade failed")
	}
	if !l.HeldForWrite() {
		t.Fatal("not held for write after upgrade")
	}
	l.WriteToRead(self)
	l.Done(self)
	if got := l.Readers(); got != 0 {
		t.Fatalf("Readers = %d after full cycle", got)
	}
}

func TestBiasRearmsAfterCooldown(t *testing.T) {
	l := biasedLock()
	self := sched.New("t")
	w := sched.New("w")
	l.Write(w) // revokes
	l.Done(w)
	if l.biasArmed() {
		t.Fatal("bias armed immediately after revocation (cooldown skipped)")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !l.biasArmed() {
		if time.Now().After(deadline) {
			t.Fatal("bias never re-armed")
		}
		l.Read(self) // slow-path reads re-arm once the cooldown expires
		l.Done(self)
	}
	// And the fast path works again.
	before := l.Stats().BiasedReads
	l.Read(self)
	l.Done(self)
	if l.Stats().BiasedReads != before+1 {
		t.Fatal("fast path dead after re-arm")
	}
}

func TestBiasTryWriteRefusesVisibleReader(t *testing.T) {
	l := biasedLock()
	r := sched.New("r")
	w := sched.New("w")
	l.Read(r) // fast-path hold
	if l.TryWrite(w) {
		t.Fatal("TryWrite succeeded over a biased reader")
	}
	l.Done(r)
	// The failed TryWrite revoked the bias; the lock must still be fully
	// functional through the slow path and eventually re-arm.
	if !l.TryWrite(w) {
		t.Fatal("TryWrite failed on a free lock")
	}
	l.Done(w)
}

func TestBiasHeldForWriteSeesFastReaders(t *testing.T) {
	l := biasedLock()
	r := sched.New("r")
	l.Read(r)
	if l.HeldForWrite() {
		t.Fatal("HeldForWrite true with only a biased reader")
	}
	if got := l.Readers(); got != 1 {
		t.Fatalf("Readers = %d, want 1", got)
	}
	l.Done(r)
}

func TestBiasOptionsSemanticsMatchUnbiased(t *testing.T) {
	// The full protocol surface must behave identically with bias on and
	// off: writer exclusion, try variants, downgrade.
	for _, biased := range []bool{false, true} {
		l := NewWith(Options{Sleep: true, ReaderBias: biased})
		self := sched.New("t")
		l.Write(self)
		if l.TryRead(sched.New("other")) {
			t.Fatalf("biased=%v: TryRead succeeded under write hold", biased)
		}
		l.WriteToRead(self)
		other := sched.New("other")
		if !l.TryRead(other) {
			t.Fatalf("biased=%v: TryRead failed under read hold", biased)
		}
		l.Done(other)
		l.Done(self)
		if !l.TryWrite(self) {
			t.Fatalf("biased=%v: TryWrite failed on free lock", biased)
		}
		l.Done(self)
	}
}

func TestBiasReadersRaceClean(t *testing.T) {
	// Raw -race smoke test: biased readers with a shared structure,
	// concurrent writers mutating it, under real host scheduling. The
	// exhaustive version of this race lives in sim_test.go
	// (TestSimBiasReadersScheduled), which explores the interleavings
	// deterministically; this one keeps a short run on the real scheduler
	// so the memory-ordering claims stay covered by the race detector.
	l := biasedLock()
	shared := map[int]int{0: 0}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	const readIters = 300
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			self := sched.New("r")
			for j := 0; j < readIters; j++ {
				l.Read(self)
				_ = shared[0]
				l.Done(self)
			}
		}()
	}
	wrote := make(chan struct{})
	w := sched.Go("w", func(self *sched.Thread) {
		first := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.Write(self)
			shared[0]++
			l.Done(self)
			if first {
				first = false
				close(wrote)
			}
			time.Sleep(time.Millisecond)
		}
	})
	wg.Wait()
	// Under heavy host load the readers can drain before the writer is
	// ever scheduled; insist on one write so the overlap assertions below
	// are meaningful.
	<-wrote
	close(stop)
	w.Join()
	s := l.Stats()
	if s.ReadAcquisitions != 4*readIters {
		t.Fatalf("ReadAcquisitions = %d, want %d", s.ReadAcquisitions, 4*readIters)
	}
	if s.WriteAcquisitions == 0 {
		t.Fatal("writer never ran")
	}
}

func TestRecursiveOptionGate(t *testing.T) {
	// Locks built through Options without Recursive must refuse
	// SetRecursive loudly.
	l := NewWith(Options{Sleep: true})
	self := sched.New("t")
	l.Write(self)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetRecursive on non-recursive lock did not panic")
			}
		}()
		l.SetRecursive(self)
	}()
	l.Done(self)

	// With the option, the protocol works as before.
	lr := NewWith(Options{Sleep: true, Recursive: true})
	lr.Write(self)
	lr.SetRecursive(self)
	lr.Read(self) // recursive read under write hold
	lr.Done(self)
	lr.ClearRecursive(self)
	lr.Done(self)
}

func TestDeprecatedConstructorsStillRecursive(t *testing.T) {
	// New/Init predate the Recursive option and must keep allowing
	// SetRecursive (compatibility contract of the deprecated wrappers).
	l := New(true)
	self := sched.New("t")
	l.Write(self)
	l.SetRecursive(self) // must not panic
	l.ClearRecursive(self)
	l.Done(self)
}

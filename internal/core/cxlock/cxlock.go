// Package cxlock implements Mach's complex locks: the machine-independent
// multiple-readers/single-writer locks of Section 4 and Appendix B of the
// paper, with the Sleep and Recursive protocols as options.
//
// The implementation follows the paper's (and Mach kern/lock.c's) design
// exactly:
//
//   - The internal state of every complex lock is protected by a simple
//     lock (the interlock); this is the only machine dependency.
//   - Writers have priority: readers are not admitted while a write or
//     upgrade request is outstanding, guaranteeing writers are not starved.
//   - An upgrade (ReadToWrite) fails — releasing the caller's read hold —
//     if another upgrade is already pending, because two upgrades would
//     deadlock against each other's read holds. Upgrades are favored over
//     plain writes.
//   - A downgrade (WriteToRead) can never fail and is the recommended
//     alternative to upgrading (Section 7.1).
//   - With the Sleep option a requestor blocks on the lock's event using
//     the assert_wait/thread_block protocol; without it requestors spin.
//     Only sleepable locks may be held across blocking operations.
//   - The Recursive option lets a designated holder re-acquire the lock;
//     the holder's read requests are not blocked by pending writes or
//     upgrades, so it can drain its recursion and release (Section 4). The
//     paper's verdict that recursive locking is a design trap is
//     reproduced as experiment E11.
//
// Lock holders are identified by *sched.Thread where a protocol needs an
// identity (sleeping, recursion); spin-mode acquisitions may pass nil.
package cxlock

import (
	"runtime"
	"sync/atomic"
	"time"

	"machlock/internal/core/splock"
	"machlock/internal/machsim/simhook"
	"machlock/internal/sched"
	"machlock/internal/trace"
)

// Stats is a snapshot of a lock's accounting.
type Stats struct {
	ReadAcquisitions  int64 // all read holds granted, biased fast path included
	WriteAcquisitions int64
	Sleeps            int64 // times a requestor blocked
	Spins             int64 // spin iterations while waiting
	Upgrades          int64 // successful read-to-write upgrades
	FailedUpgrades    int64 // upgrades that failed and released the read lock
	Downgrades        int64
	BiasedReads       int64 // subset of ReadAcquisitions that took the bias fast path
	BiasRevocations   int64 // times a write request revoked the reader bias
}

// Lock is a complex lock (lock_data_t). Create with New or initialize an
// embedded value with Init; an uninitialized zero value is a valid
// non-sleepable lock, matching Mach's lock_init(l, FALSE).
type Lock struct {
	interlock splock.Lock

	wantWrite   bool
	wantUpgrade bool
	waiting     bool
	canSleep    bool
	readCount   int32

	// spinPark is the spin-then-park budget (Options.SpinPark): waiters
	// with a thread identity spin this many rounds before blocking.
	// Zero means classic waiting (sleepable locks block immediately).
	// Immutable after InitWith.
	spinPark int32

	// Recursive option state: the designated holder and its depth of
	// write recursion. holder is set by SetRecursive while write-held.
	holder *sched.Thread
	depth  int32

	// norecurse forbids SetRecursive; set (inverted, so the zero value
	// keeps the permissive legacy behaviour) by InitWith when the
	// Recursive option was not requested.
	norecurse bool

	// name labels the lock in reports; set by InitWith.
	name string

	// bias is the ReaderBias option state (see bias.go); nil — the
	// default and the zero value — means every reader uses the paper's
	// interlocked protocol.
	bias *biasTable

	// Mach25UpgradeBug reproduces the documented Mach 2.5 defect in
	// lock_try_read_to_write: it "will block even if the Sleep option is
	// disabled for the lock". Off by default (the correct behaviour).
	Mach25UpgradeBug bool

	// BusyWait makes non-sleeping waiters burn CPU between attempts
	// instead of yielding to the Go scheduler, modelling what a real
	// kernel spin does to a processor. Off by default — yielding keeps
	// simulations live on small hosts — and enabled by experiment E5 to
	// measure the cost the Sleep option avoids.
	BusyWait bool

	stats lockStats

	// class is the optional observability registration; nil means
	// untraced. stat is the optional per-instance timing sink installed
	// by StatRW. Both are immutable once the lock is in concurrent use.
	class *trace.Class
	stat  *rwInstr
	// acquiredAt stamps the current hold occupancy (first reader in, or
	// writer in) in ns; protected by the interlock, nonzero only while
	// instrumented.
	acquiredAt int64
	// hold is the sampled identity of the current occupancy's first
	// holder, published for waiters to blame (trace.Class.BlameWait) and
	// cleared when the occupancy ends. Nil between holds and for
	// unsampled holds, in which case waiters' delay accumulates as
	// unattributed.
	hold atomic.Pointer[trace.HoldInfo]
}

// tidOf returns t's trace id (0 for the nil thread).
func tidOf(t *sched.Thread) uint32 {
	if t == nil {
		return 0
	}
	return t.TraceID()
}

// SetClass registers the lock with the observability layer. Call before
// the lock is in concurrent use.
//
// Deprecated: pass Options.Class to NewWith or InitWith instead; mutating
// a lock after construction is exactly what lock_init-style initialization
// exists to avoid. Retained for embedded zero-value locks.
func (l *Lock) SetClass(c *trace.Class) { l.class = c }

// instrOn reports whether acquisition timing is wanted right now: a
// per-instance stats sink is attached or the class is traced. One atomic
// load on the common (untraced) path.
func (l *Lock) instrOn() bool { return l.stat != nil || l.class.On() }

// recordAcquired feeds one granted hold to the per-instance sink and the
// class profile; called outside the interlock, like the observer hooks.
// Contended acquisitions also feed the waiter-side site profile (sampled).
// Hot paths gate the call on instrOn, so the body assumes something is
// listening; the On() recheck only skips the trace half for stat-only
// instrumentation.
func (l *Lock) recordAcquired(t *sched.Thread, contended bool, waitNs int64) {
	if l.stat != nil {
		l.stat.acquired(contended, waitNs)
	}
	if !l.class.On() {
		return
	}
	l.class.AcquiredBy(tidOf(t), contended, waitNs)
	if contended && waitNs > 0 {
		l.class.WaitSampled(1, waitNs)
	}
}

// recordReleased feeds one release; holdNs < 0 means no occupancy sample
// ended with this release (e.g. a reader left while others remain). h is
// the holder identity the occupancy published, if any — its hold duration
// lands in the class's hold-site profile.
func (l *Lock) recordReleased(t *sched.Thread, holdNs int64, h *trace.HoldInfo) {
	if l.stat != nil {
		l.stat.released(holdNs)
	}
	if !l.class.On() {
		return
	}
	l.class.ReleasedBy(tidOf(t), holdNs)
	if holdNs >= 0 {
		l.class.EndHold(h, holdNs)
	}
}

// publishHold samples this acquisition for holder blame: 1-in-N grants
// capture the acquiring stack and publish it on l.hold for waiters to
// read. Call only for the grant that starts an occupancy (writer in, or
// first reader in) — later readers share the first-in holder's blame.
// The On() gate here inlines into the grant paths, so untraced locks pay
// one predictable branch rather than a call chain.
func (l *Lock) publishHold(t *sched.Thread) {
	if !l.class.On() {
		return
	}
	l.publishHoldSampled(t)
}

func (l *Lock) publishHoldSampled(t *sched.Thread) {
	if h := l.class.SampleHold(2, tidOf(t)); h != nil {
		h.Since = nowNs()
		l.hold.Store(h)
	}
}

// takeHold retires the published holder identity at end of occupancy;
// called under the interlock. Callers guard with holdPublished so the
// common case (nothing published: tracing off, or an unsampled
// acquisition) is one plain atomic load — no RMW on the release fast
// path. The load-then-swap split is not racy: holds are published only by
// the current holder, and takeHold runs when that occupancy ends, so no
// concurrent store can interleave.
func (l *Lock) takeHold() *trace.HoldInfo { return l.hold.Swap(nil) }

// holdPublished reports whether the current occupancy published a holder
// identity; inlines to one atomic load.
func (l *Lock) holdPublished() bool { return l.hold.Load() != nil }

// nowNs is the package clock: the machsim virtual clock when a harness is
// installed (so time-dependent protocol state — the bias re-arm cooldown —
// is deterministic under schedule exploration), else the host clock.
func nowNs() int64 {
	if n, ok := simhook.NowNs(); ok {
		return n
	}
	return time.Now().UnixNano()
}

type lockStats struct {
	reads          atomic.Int64
	writes         atomic.Int64
	sleeps         atomic.Int64
	spins          atomic.Int64
	upgrades       atomic.Int64
	failedUpgrades atomic.Int64
	downgrades     atomic.Int64
}

// New creates a complex lock; canSleep enables the Sleep option
// (lock_init).
//
// Deprecated: use NewWith, which exposes every option; New remains as a
// thin wrapper for existing callers.
func New(canSleep bool) *Lock {
	return NewWith(Options{Sleep: canSleep, Recursive: true})
}

// Init initializes an embedded lock value (lock_init). It must not be
// called on a lock in use.
//
// Deprecated: use InitWith; Init remains as a thin wrapper for existing
// callers.
func (l *Lock) Init(canSleep bool) {
	l.InitWith(Options{Sleep: canSleep, Recursive: true})
}

// CanSleep reports whether the Sleep option is enabled.
func (l *Lock) CanSleep() bool {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	return l.canSleep
}

// wait releases the interlock and waits for the lock's state to change,
// then re-acquires the interlock. With the Sleep option and a thread
// identity it blocks via the event-wait protocol; otherwise it spins.
// round is the caller's waiting-round counter for this acquisition: a
// spin-then-park lock (Options.SpinPark) spends its first spinPark
// rounds spinning and blocks from then on, so short occupancies are
// ridden out without a context switch. The caller must hold the
// interlock and must have set l.waiting when sleeping (done here).
func (l *Lock) wait(t *sched.Thread, round int) {
	tr := l.class.On()
	var start time.Time
	var blamed *trace.HoldInfo
	var tid uint32
	if tr {
		start = time.Now()
		tid = tidOf(t)
		// Blame is pinned to the holder visible when the wait begins: by
		// the time the wait ends the lock may have changed hands, but the
		// delay was caused by whoever held it when we had to stop.
		blamed = l.hold.Load()
	}
	park := l.canSleep && t != nil
	if park && round < int(l.spinPark) {
		// Spin-then-park: still inside the spin window.
		park = false
	}
	if park {
		l.waiting = true
		l.stats.sleeps.Add(1)
		sched.AssertWait(t, sched.Event(l))
		l.interlock.Unlock()
		obWaiting(l, t)
		l.class.WaitingBy(tid)
		sched.ThreadBlock(t)
		obDoneWaiting(l, t)
	} else {
		l.stats.spins.Add(1)
		l.interlock.Unlock()
		obWaiting(l, t)
		l.class.WaitingBy(tid)
		if simhook.Enabled() {
			// One spin iteration is a voluntary machsim yield: the
			// interlock has been released, so the harness is free to run
			// the holder this waiter is spinning on.
			simhook.Yield(simhook.CxSpin, l)
		} else if l.BusyWait {
			busyPause()
		} else {
			runtime.Gosched()
		}
		obDoneWaiting(l, t)
	}
	if tr {
		waitNs := time.Since(start).Nanoseconds()
		l.class.DoneWaitingBy(tid, waitNs)
		l.class.BlameWait(blamed, waitNs)
	}
	l.interlock.Lock() //machlock:holds — handoff: wait() returns with the interlock reacquired for its caller
}

// pauseSink defeats dead-code elimination of the busy-wait loop without
// introducing a data race.
var pauseSink atomic.Uint64

// busyPause occupies the processor for a short, bounded burst — the
// simulated cost of one hardware spin window.
func busyPause() {
	var x uint64 = 88172645463325252
	for i := 0; i < 256; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	pauseSink.Store(x)
}

// busyYield is the polite spin step shared by the package's non-sleeping
// waiters: give other goroutines the processor between attempts.
func busyYield() { runtime.Gosched() }

// wakeupLocked wakes lock waiters if any are recorded; interlock held.
func (l *Lock) wakeupLocked() {
	if l.waiting {
		l.waiting = false
		sched.ThreadWakeup(sched.Event(l))
	}
}

// Write acquires the lock for writing (lock_write). If t is the lock's
// recursive holder, the recursion depth is incremented instead.
func (l *Lock) Write(t *sched.Thread) {
	simhook.Yield(simhook.CxWrite, l)
	instr := l.instrOn()
	var waitStart time.Time
	waited := false
	l.interlock.Lock()
	if t != nil && l.holder == t {
		if !l.wantWrite && !l.wantUpgrade {
			// The holder downgraded to a recursive read lock; the
			// paper: "this downgrade prohibits recursive
			// acquisitions for write".
			l.interlock.Unlock()
			panic("cxlock: recursive write acquisition after downgrade")
		}
		// Recursive acquisition by the designated holder.
		l.depth++
		simhook.Note(simhook.CxRecurseGrant, l, int64(l.depth))
		l.interlock.Unlock()
		obAcquired(l, t)
		if instr {
			l.recordAcquired(t, false, 0)
		}
		return
	}
	// Acquire the want_write bit; writers queue behind existing writers.
	// One spin-then-park round counter spans the whole acquisition: the
	// budget bounds total pre-block spinning, not per-condition spinning.
	round := 0
	for l.wantWrite {
		if instr && !waited {
			waitStart = time.Now()
			waited = true
		}
		l.wait(t, round)
		round++
	}
	l.wantWrite = true
	simhook.Note(simhook.CxWriteWant, l, 0)
	// Revoke the reader bias (if armed) before draining: fast-path
	// readers must either be visible in the slot table or observe the
	// disarmed flag and queue behind us.
	l.revokeBiasLocked()
	// Wait for readers to drain — interlocked readers and published
	// slot readers alike — deferring to any pending upgrade: upgrades
	// are favored over writes because the upgrader already holds
	// standing in the lock.
	for l.readCount != 0 || l.wantUpgrade || l.biasReadersVisible() {
		if instr && !waited {
			waitStart = time.Now()
			waited = true
		}
		l.wait(t, round)
		round++
	}
	l.noteBiasDrainedLocked()
	l.stats.writes.Add(1)
	simhook.Note(simhook.CxWriteGrant, l, 0)
	if instr {
		l.acquiredAt = nowNs()
	}
	l.interlock.Unlock()
	if instr {
		// instr false implies the class is off (instrOn covers On()), so
		// the untraced grant path skips even the sampling branch.
		l.publishHold(t)
	}
	obAcquired(l, t)
	simhook.Yield(simhook.CxAcquired, l)
	if instr {
		var waitNs int64
		if waited {
			waitNs = time.Since(waitStart).Nanoseconds()
		}
		l.recordAcquired(t, waited, waitNs)
	}
}

// Read acquires the lock for reading (lock_read). The recursive holder's
// read requests are not blocked by pending write or upgrade requests; all
// other readers queue behind them (writer priority).
func (l *Lock) Read(t *sched.Thread) {
	simhook.Yield(simhook.CxRead, l)
	if l.readFast(t) {
		obAcquired(l, t)
		simhook.Yield(simhook.CxAcquired, l)
		return
	}
	instr := l.instrOn()
	var waitStart time.Time
	waited := false
	l.interlock.Lock()
	if t != nil && l.holder == t {
		l.readCount++
		l.stats.reads.Add(1)
		simhook.Note(simhook.CxReadGrantRec, l, int64(l.readCount))
		if instr && l.acquiredAt == 0 {
			l.acquiredAt = nowNs()
		}
		l.interlock.Unlock()
		obAcquired(l, t)
		if instr {
			l.recordAcquired(t, false, 0)
		}
		return
	}
	round := 0
	for l.wantWrite || l.wantUpgrade {
		if instr && !waited {
			waitStart = time.Now()
			waited = true
		}
		l.wait(t, round)
		round++
	}
	l.readCount++
	l.stats.reads.Add(1)
	simhook.Note(simhook.CxReadGrant, l, int64(l.readCount))
	l.maybeRearmLocked()
	// Occupancy: the hold sample spans from the first reader in to the
	// last reader out, so only the 0→1 transition stamps the clock.
	first := l.readCount == 1
	if instr && first {
		l.acquiredAt = nowNs()
	}
	l.interlock.Unlock()
	if instr && first {
		l.publishHold(t)
	}
	obAcquired(l, t)
	simhook.Yield(simhook.CxAcquired, l)
	if instr {
		var waitNs int64
		if waited {
			waitNs = time.Since(waitStart).Nanoseconds()
		}
		l.recordAcquired(t, waited, waitNs)
	}
}

// ReadToWrite upgrades a read hold to a write hold (lock_read_to_write).
// It returns true if the upgrade FAILED because another upgrade request was
// outstanding; in that case the caller's read hold has been released and it
// must restart its operation from scratch — the recovery burden the paper
// cites as the reason this feature is rarely used. On success (false) the
// caller holds the lock for writing.
func (l *Lock) ReadToWrite(t *sched.Thread) bool {
	simhook.Yield(simhook.CxUpgrade, l)
	instr := l.instrOn()
	l.interlock.Lock()
	// A hold taken on the bias fast path lives in the slot table, not in
	// readCount; migrate it under the interlock so the upgrade protocol
	// below operates on the representation it understands. The write-side
	// drain counts holds in either representation, so the hold is never
	// invisible during the move.
	l.migrateBiasHoldLocked(t)
	if t != nil && l.holder == t {
		if !l.wantWrite && !l.wantUpgrade {
			// "…and upgrades of recursive read acquisitions" are
			// prohibited after a downgrade. Checked before touching
			// any state so the caller's holds survive the panic.
			l.interlock.Unlock()
			panic("cxlock: upgrade of recursive read acquisition after downgrade")
		}
		// The recursive holder already has write standing; fold the
		// read hold into recursion depth.
		l.readCount--
		l.depth++
		simhook.Note(simhook.CxReleaseRead, l, int64(l.readCount))
		simhook.Note(simhook.CxRecurseGrant, l, int64(l.depth))
		l.interlock.Unlock()
		l.class.Upgraded(true)
		return false
	}
	l.readCount--
	if l.wantUpgrade {
		// Someone else is upgrading: two upgrades deadlock, so this one
		// fails and its read hold is gone.
		l.stats.failedUpgrades.Add(1)
		simhook.Note(simhook.CxUpgradeFail, l, int64(l.readCount))
		holdNs := int64(-1)
		var h *trace.HoldInfo
		if instr && l.readCount == 0 && l.acquiredAt != 0 {
			holdNs = nowNs() - l.acquiredAt
			l.acquiredAt = 0
			if l.holdPublished() {
				h = l.takeHold()
			}
		}
		l.wakeupLocked()
		l.interlock.Unlock()
		obReleased(l, t)
		l.class.Upgraded(false)
		if instr {
			l.recordReleased(t, holdNs, h)
		}
		return true
	}
	l.wantUpgrade = true
	simhook.Note(simhook.CxUpgradeWant, l, int64(l.readCount))
	l.revokeBiasLocked()
	for round := 0; l.readCount != 0 || l.biasReadersVisible(); round++ {
		l.wait(t, round)
	}
	l.noteBiasDrainedLocked()
	l.stats.upgrades.Add(1)
	simhook.Note(simhook.CxUpgradeGrant, l, 0)
	// The hold continues across the upgrade: if this thread was the only
	// reader its occupancy stamp carries over; if other readers ended the
	// occupancy while we drained, restart the stamp for the write hold.
	restamped := instr && l.acquiredAt == 0
	if restamped {
		l.acquiredAt = nowNs()
	}
	l.interlock.Unlock()
	if restamped {
		l.publishHold(t)
	}
	l.class.Upgraded(true)
	simhook.Yield(simhook.CxAcquired, l)
	return false
}

// WriteToRead downgrades a write hold to a read hold (lock_write_to_read).
// It cannot fail and requires no recovery logic in the caller; the paper
// recommends write-then-downgrade over read-then-upgrade for exactly this
// reason.
func (l *Lock) WriteToRead(t *sched.Thread) {
	simhook.Yield(simhook.CxDowngrade, l)
	l.interlock.Lock()
	l.readCount++
	if t != nil && l.holder == t && l.depth > 0 {
		// Recursion pop: the holder keeps write standing and gains a read
		// hold, so for the shadow model this is a recursive read grant.
		l.depth--
		simhook.Note(simhook.CxReleaseRecursive, l, int64(l.depth))
		simhook.Note(simhook.CxReadGrantRec, l, int64(l.readCount))
	} else if l.wantUpgrade {
		l.wantUpgrade = false
		simhook.Note(simhook.CxDowngradeDone, l, int64(l.readCount))
	} else {
		l.wantWrite = false
		simhook.Note(simhook.CxDowngradeDone, l, int64(l.readCount))
	}
	l.stats.downgrades.Add(1)
	// The hold continues in read mode; the occupancy stamp carries over.
	l.wakeupLocked()
	l.interlock.Unlock()
	l.class.Downgraded()
}

// Done releases a lock held in any mode (lock_done). "A lock can be held
// either by a single writer or by one or more readers, thus lock_done can
// always determine how the lock is held and release it appropriately."
func (l *Lock) Done(t *sched.Thread) {
	simhook.Yield(simhook.CxDone, l)
	if l.doneFast(t) {
		obReleased(l, t)
		return
	}
	instr := l.instrOn()
	l.interlock.Lock()
	endHold := false
	switch {
	case l.readCount > 0:
		l.readCount--
		endHold = l.readCount == 0
		simhook.Note(simhook.CxReleaseRead, l, int64(l.readCount))
	case t != nil && l.holder == t && l.depth > 0:
		l.depth--
		simhook.Note(simhook.CxReleaseRecursive, l, int64(l.depth))
	case l.wantUpgrade:
		l.wantUpgrade = false
		endHold = true
		simhook.Note(simhook.CxReleaseUpgrade, l, 0)
	case l.wantWrite:
		l.wantWrite = false
		endHold = true
		simhook.Note(simhook.CxReleaseWrite, l, 0)
	default:
		l.interlock.Unlock()
		panic("cxlock: lock_done on lock not held")
	}
	holdNs := int64(-1)
	var h *trace.HoldInfo
	// A published hold implies the occupancy was instrumented (publishing
	// requires the class to be on, which instrOn covers), so the stamp
	// check also guards the hold retire — the untraced release path pays
	// nothing here.
	if endHold && l.acquiredAt != 0 {
		holdNs = nowNs() - l.acquiredAt
		l.acquiredAt = 0
		if l.holdPublished() {
			h = l.takeHold()
		}
	}
	l.wakeupLocked()
	l.interlock.Unlock()
	obReleased(l, t)
	if instr {
		l.recordReleased(t, holdNs, h)
	}
}

// TryRead makes a single attempt to acquire the lock for reading
// (lock_try_read); it never spins or blocks.
func (l *Lock) TryRead(t *sched.Thread) bool {
	simhook.Yield(simhook.CxTryRead, l)
	if simhook.ForceFail(simhook.CxTryRead, l) {
		return false
	}
	if l.readFast(t) {
		obAcquired(l, t)
		return true
	}
	instr := l.instrOn()
	l.interlock.Lock()
	defer l.interlock.Unlock()
	if t != nil && l.holder == t {
		l.readCount++
		l.stats.reads.Add(1)
		simhook.Note(simhook.CxReadGrantRec, l, int64(l.readCount))
		if instr && l.acquiredAt == 0 {
			l.acquiredAt = nowNs()
		}
		defer obAcquired(l, t)
		if instr {
			defer l.recordAcquired(t, false, 0)
		}
		return true
	}
	if l.wantWrite || l.wantUpgrade {
		return false
	}
	l.readCount++
	l.stats.reads.Add(1)
	simhook.Note(simhook.CxReadGrant, l, int64(l.readCount))
	l.maybeRearmLocked()
	if l.readCount == 1 && instr {
		l.acquiredAt = nowNs()
		defer l.publishHold(t)
	}
	defer obAcquired(l, t)
	if instr {
		defer l.recordAcquired(t, false, 0)
	}
	return true
}

// TryWrite makes a single attempt to acquire the lock for writing
// (lock_try_write); it never spins or blocks. In particular it returns
// false if the lock is currently held for writing.
func (l *Lock) TryWrite(t *sched.Thread) bool {
	simhook.Yield(simhook.CxTryWrite, l)
	if simhook.ForceFail(simhook.CxTryWrite, l) {
		return false
	}
	instr := l.instrOn()
	l.interlock.Lock()
	defer l.interlock.Unlock()
	if t != nil && l.holder == t {
		if !l.wantWrite && !l.wantUpgrade {
			return false // downgraded holder may not re-acquire for write
		}
		l.depth++
		simhook.Note(simhook.CxRecurseGrant, l, int64(l.depth))
		defer obAcquired(l, t)
		if instr {
			defer l.recordAcquired(t, false, 0)
		}
		return true
	}
	if l.wantWrite || l.wantUpgrade || l.readCount != 0 {
		return false
	}
	// Reader bias: disarm BEFORE scanning the slot table. A fast-path
	// reader that completed its recheck before the disarm is visible in
	// the scan (we fail); one that rechecks after it self-evicts. Either
	// way no fast reader coexists with a granted try-write. The bias
	// stays revoked so a try-loop converges; slow-path readers re-arm it
	// after the cooldown.
	l.revokeBiasLocked()
	if l.biasReadersVisible() {
		return false
	}
	l.noteBiasDrainedLocked()
	l.wantWrite = true
	l.stats.writes.Add(1)
	simhook.Note(simhook.CxWriteGrant, l, 0)
	if instr {
		l.acquiredAt = nowNs()
		defer l.publishHold(t)
	}
	defer obAcquired(l, t)
	if instr {
		defer l.recordAcquired(t, false, 0)
	}
	return true
}

// TryReadToWrite attempts to upgrade a read hold to a write hold
// (lock_try_read_to_write). Unlike ReadToWrite it does NOT drop the read
// lock if the upgrade would deadlock: if another upgrade is pending it
// returns false with the read hold intact. If the upgrade can proceed it
// may wait for other readers to drain — by spinning if the Sleep option is
// off, or by blocking if it is on. (With Mach25UpgradeBug set, it blocks
// regardless of the Sleep option, reproducing the documented Mach 2.5
// defect; the paper notes the bug likely survived because no Mach kernel
// used this routine.)
func (l *Lock) TryReadToWrite(t *sched.Thread) bool {
	simhook.Yield(simhook.CxTryUpgrade, l)
	if simhook.ForceFail(simhook.CxTryUpgrade, l) {
		return false // read hold intact, per the TryReadToWrite contract
	}
	l.interlock.Lock()
	// As in ReadToWrite: move a fast-path hold into readCount first.
	l.migrateBiasHoldLocked(t)
	if t != nil && l.holder == t {
		if !l.wantWrite && !l.wantUpgrade {
			l.interlock.Unlock()
			return false // downgraded holder may not upgrade
		}
		l.readCount--
		l.depth++
		simhook.Note(simhook.CxReleaseRead, l, int64(l.readCount))
		simhook.Note(simhook.CxRecurseGrant, l, int64(l.depth))
		l.interlock.Unlock()
		return true
	}
	if l.wantUpgrade {
		l.interlock.Unlock()
		return false
	}
	l.readCount--
	l.wantUpgrade = true
	simhook.Note(simhook.CxUpgradeWant, l, int64(l.readCount))
	l.revokeBiasLocked()
	for round := 0; l.readCount != 0 || l.biasReadersVisible(); round++ {
		if l.Mach25UpgradeBug && t != nil {
			// Mach 2.5: blocks even when the lock is not sleepable.
			l.waiting = true
			l.stats.sleeps.Add(1)
			sched.AssertWait(t, sched.Event(l))
			l.interlock.Unlock()
			sched.ThreadBlock(t)
			l.interlock.Lock()
		} else {
			l.wait(t, round)
		}
	}
	l.noteBiasDrainedLocked()
	l.stats.upgrades.Add(1)
	simhook.Note(simhook.CxUpgradeGrant, l, 0)
	restamped := l.instrOn() && l.acquiredAt == 0
	if restamped {
		l.acquiredAt = nowNs()
	}
	l.interlock.Unlock()
	if restamped {
		l.publishHold(t)
	}
	l.class.Upgraded(true)
	simhook.Yield(simhook.CxAcquired, l)
	return true
}

// SetRecursive enables the Recursive option for the calling thread
// (lock_set_recursive). The lock must be held for writing by t. While
// recursive, t's re-acquisitions succeed immediately and its read requests
// bypass pending writers.
func (l *Lock) SetRecursive(t *sched.Thread) {
	if t == nil {
		panic("cxlock: SetRecursive requires a thread identity")
	}
	if l.norecurse {
		panic("cxlock: Recursive option not enabled for this lock (Options.Recursive)")
	}
	l.interlock.Lock()
	defer l.interlock.Unlock()
	if !l.wantWrite && !l.wantUpgrade {
		panic("cxlock: SetRecursive on lock not held for write")
	}
	if l.holder != nil && l.holder != t {
		panic("cxlock: SetRecursive while another thread is the recursive holder")
	}
	l.holder = t
}

// ClearRecursive clears the Recursive option (lock_clear_recursive). It
// must be called by the recursive holder, with no outstanding recursive
// acquisitions, before the final release.
func (l *Lock) ClearRecursive(t *sched.Thread) {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	if l.holder != t {
		panic("cxlock: ClearRecursive by non-holder")
	}
	if l.depth != 0 {
		panic("cxlock: ClearRecursive with recursive acquisitions outstanding")
	}
	l.holder = nil
}

// RecursiveHolder returns the current recursive holder, or nil.
func (l *Lock) RecursiveHolder() *sched.Thread {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	return l.holder
}

// HeldForWrite reports whether the lock is currently held for writing.
// Advisory; for assertions only.
func (l *Lock) HeldForWrite() bool {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	return (l.wantWrite || l.wantUpgrade) && l.readCount == 0 && !l.biasReadersVisible()
}

// Readers returns the current read-hold count, published fast-path
// readers included. Advisory.
func (l *Lock) Readers() int {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	n := int(l.readCount)
	if b := l.bias; b != nil {
		for i := range b.slots {
			if b.slots[i].owner.Load() != nil {
				n++
			}
		}
	}
	return n
}

// Stats returns a snapshot of the lock's accounting. Read acquisitions
// taken on the bias fast path are included in ReadAcquisitions (and
// broken out in BiasedReads), so enabling the bias never silently
// undercounts.
func (l *Lock) Stats() Stats {
	biased := l.biasReadCount()
	s := Stats{
		ReadAcquisitions:  l.stats.reads.Load() + biased,
		WriteAcquisitions: l.stats.writes.Load(),
		Sleeps:            l.stats.sleeps.Load(),
		Spins:             l.stats.spins.Load(),
		Upgrades:          l.stats.upgrades.Load(),
		FailedUpgrades:    l.stats.failedUpgrades.Load(),
		Downgrades:        l.stats.downgrades.Load(),
		BiasedReads:       biased,
	}
	if b := l.bias; b != nil {
		s.BiasRevocations = b.revocations.Load()
	}
	return s
}

package cxlock

import (
	"machlock/internal/core/splock"
	"machlock/internal/machsim/simhook"
	"machlock/internal/sched"
)

// ClassLock is the "custom designed lock" of Section 5: "two exclusive
// classes of readers". Holders of the same class share the lock;
// the two classes exclude each other. In the pmap modules this replaced a
// readers/writers pmap system lock: forward (pmap→pv) operations form one
// class and reverse (pv→pmap) operations the other — members of a class
// never conflict on lock ORDER with each other, only with the other class.
//
// Fairness follows the same shape as writer priority: once a thread of
// the other class is waiting, new requests of the currently-active class
// queue behind it, so neither class can starve the other.
type ClassLock struct {
	interlock splock.Lock

	count   [2]int32 // active holders per class
	waiting [2]int32 // queued requestors per class
	// turn biases admission toward a class with waiters when the lock
	// drains; flips on every hand-off.
	turn int
}

// Class identifies one of the two reader classes.
type Class int

// The two classes. The names reflect the pmap use; any two mutually
// exclusive populations fit.
const (
	Forward Class = 0 // e.g. virtual→physical operations
	Reverse Class = 1 // e.g. physical→virtual operations
)

// NewClassLock creates an unheld class lock.
func NewClassLock() *ClassLock { return &ClassLock{} }

func (c Class) other() Class { return 1 - c }

// Acquire takes the lock for class c on behalf of t (nil spins). It
// admits the caller when no holder of the other class is active, and
// queues behind waiting members of the other class to prevent starvation.
func (l *ClassLock) Acquire(c Class, t *sched.Thread) {
	l.interlock.Lock()
	for !l.admissible(c) {
		l.waiting[c]++
		if t != nil {
			sched.AssertWait(t, sched.Event(l))
			l.interlock.Unlock()
			sched.ThreadBlock(t)
		} else {
			l.interlock.Unlock()
			if simhook.Enabled() {
				// Under the simulator a raw busy-wait would spin the host
				// forever; yield the schedule point instead, like the other
				// spinners in the package.
				simhook.Yield(simhook.CxSpin, l)
			} else {
				spinYield()
			}
		}
		l.interlock.Lock()
		l.waiting[c]--
	}
	l.count[c]++
	l.interlock.Unlock()
}

// TryAcquire makes a single attempt.
func (l *ClassLock) TryAcquire(c Class, t *sched.Thread) bool {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	if !l.admissible(c) {
		return false
	}
	l.count[c]++
	return true
}

// admissible reports whether a class-c requestor may enter; interlock
// held. The anti-starvation rule mirrors writer priority: once the other
// class has a waiter, no new member may join the active class (it must
// drain), and an idle lock admits by turn.
func (l *ClassLock) admissible(c Class) bool {
	o := c.other()
	if l.count[o] > 0 {
		return false
	}
	if l.waiting[o] > 0 {
		if l.count[c] > 0 {
			return false // let the active class drain
		}
		if l.turn != int(c) {
			return false // idle with both classes interested: other's turn
		}
	}
	return true
}

// Release drops one class-c hold, handing the turn to the other class if
// it has waiters and waking everyone to re-evaluate.
func (l *ClassLock) Release(c Class, t *sched.Thread) {
	l.interlock.Lock()
	if l.count[c] <= 0 {
		l.interlock.Unlock()
		panic("cxlock: ClassLock release of unheld class")
	}
	l.count[c]--
	wake := false
	if l.count[c] == 0 {
		if l.waiting[c.other()] > 0 {
			l.turn = int(c.other())
		}
		wake = l.waiting[0]+l.waiting[1] > 0
	}
	l.interlock.Unlock()
	if wake {
		sched.ThreadWakeup(sched.Event(l))
	}
}

// Holders returns the current holder count of class c (advisory).
func (l *ClassLock) Holders(c Class) int {
	l.interlock.Lock()
	defer l.interlock.Unlock()
	return int(l.count[c])
}

// spinYield is the non-sleeping wait step.
func spinYield() {
	// Reuse the complex lock's pause so ClassLock spinners behave the
	// same as other spinners in the package.
	busyYield()
}

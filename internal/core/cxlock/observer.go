package cxlock

import (
	"sync/atomic"

	"machlock/internal/sched"
)

// Observer receives lock-event callbacks for debugging tools (the
// wait-for-graph deadlock detector in internal/deadlock). Callbacks are
// invoked outside the lock's interlock with a non-nil thread identity;
// anonymous (nil-thread) acquisitions are invisible to observers.
//
// Semantics are a per-(thread, lock) hold multiset: Acquired adds one
// hold, Released removes one. Upgrades and downgrades do not change the
// hold count (one hold changes mode). Waiting/DoneWaiting bracket a
// thread's wait for the lock.
type Observer interface {
	Acquired(l *Lock, t *sched.Thread)
	Released(l *Lock, t *sched.Thread)
	Waiting(l *Lock, t *sched.Thread)
	DoneWaiting(l *Lock, t *sched.Thread)
}

// observer is the registered global observer; nil means tracking is off
// (the default — observation costs one atomic load per operation).
var observer atomic.Pointer[observerBox]

type observerBox struct{ o Observer }

// SetObserver installs (or, with nil, removes) the global lock observer.
// Install before the locks being observed are in use; events from
// operations already in flight may be missed.
func SetObserver(o Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&observerBox{o: o})
}

func obAcquired(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if b := observer.Load(); b != nil {
		b.o.Acquired(l, t)
	}
}

func obReleased(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if b := observer.Load(); b != nil {
		b.o.Released(l, t)
	}
}

func obWaiting(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if b := observer.Load(); b != nil {
		b.o.Waiting(l, t)
	}
}

func obDoneWaiting(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if b := observer.Load(); b != nil {
		b.o.DoneWaiting(l, t)
	}
}

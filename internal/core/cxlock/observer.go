package cxlock

import (
	"sync"
	"sync/atomic"

	"machlock/internal/sched"
)

// Observer receives lock-event callbacks for debugging tools (the
// wait-for-graph deadlock detector in internal/deadlock, the continuous
// monitor in internal/monitor). Callbacks are invoked outside the lock's
// interlock with a non-nil thread identity; anonymous (nil-thread)
// acquisitions are invisible to observers.
//
// Semantics are a per-(thread, lock) hold multiset: Acquired adds one
// hold, Released removes one. Upgrades and downgrades do not change the
// hold count (one hold changes mode). Waiting/DoneWaiting bracket a
// thread's wait for the lock. Acquisitions taken on the ReaderBias fast
// path emit the same Acquired/Released pair as interlocked ones, so a
// biased reader's hold is never invisible to an observer (bias_test.go and
// internal/deadlock pin this).
//
// Multiple observers may be installed simultaneously (AddObserver); each
// event fans out to every registered observer in installation order. An
// observer that needs exclusive state (the deadlock tracker's multisets)
// therefore must tolerate other observers seeing the same events — they
// all do, since events are delivered to each observer independently.
type Observer interface {
	Acquired(l *Lock, t *sched.Thread)
	Released(l *Lock, t *sched.Thread)
	Waiting(l *Lock, t *sched.Thread)
	DoneWaiting(l *Lock, t *sched.Thread)
}

// observers is the registered observer list: an immutable slice swapped
// atomically on Add/Remove (copy-on-write), nil when empty so the
// disabled fast path stays one atomic load and a nil check per operation.
var observers atomic.Pointer[[]Observer]

// observersMu serializes list mutations (Add/Remove/SetObserver); event
// delivery never takes it.
var observersMu sync.Mutex

// legacy is the observer installed through the deprecated single-slot
// SetObserver, so SetObserver(nil) removes exactly that one without
// disturbing observers added with AddObserver.
var legacy Observer

// AddObserver appends o to the observer list. Install before the locks
// being observed are in use; events from operations already in flight may
// be missed. Adding the same observer twice delivers its events twice.
func AddObserver(o Observer) {
	if o == nil {
		panic("cxlock: AddObserver(nil)")
	}
	observersMu.Lock()
	defer observersMu.Unlock()
	addLocked(o)
}

// RemoveObserver removes the first registered occurrence of o (comparing
// observer identity). Removing an observer that is not installed is a
// no-op. Events already fanning out when Remove returns may still be
// delivered to o.
func RemoveObserver(o Observer) {
	observersMu.Lock()
	defer observersMu.Unlock()
	removeLocked(o)
	if legacy == o {
		legacy = nil
	}
}

// SetObserver installs (or, with nil, removes) a single observer in the
// legacy slot: each call replaces the observer the previous call
// installed, leaving observers registered via AddObserver untouched.
//
// Deprecated: use AddObserver/RemoveObserver, which let the deadlock
// tracker, the trace layer, and the continuous monitor observe
// simultaneously instead of silently evicting one another.
func SetObserver(o Observer) {
	observersMu.Lock()
	defer observersMu.Unlock()
	if legacy != nil {
		removeLocked(legacy)
	}
	legacy = o
	if o != nil {
		addLocked(o)
	}
}

func addLocked(o Observer) {
	var next []Observer
	if cur := observers.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, o)
	observers.Store(&next)
}

func removeLocked(o Observer) {
	cur := observers.Load()
	if cur == nil {
		return
	}
	for i, x := range *cur {
		if x == o {
			next := append(append([]Observer{}, (*cur)[:i]...), (*cur)[i+1:]...)
			if len(next) == 0 {
				observers.Store(nil)
			} else {
				observers.Store(&next)
			}
			return
		}
	}
}

func obAcquired(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if obs := observers.Load(); obs != nil {
		for _, o := range *obs {
			o.Acquired(l, t)
		}
	}
}

func obReleased(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if obs := observers.Load(); obs != nil {
		for _, o := range *obs {
			o.Released(l, t)
		}
	}
}

func obWaiting(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if obs := observers.Load(); obs != nil {
		for _, o := range *obs {
			o.Waiting(l, t)
		}
	}
}

func obDoneWaiting(l *Lock, t *sched.Thread) {
	if t == nil {
		return
	}
	if obs := observers.Load(); obs != nil {
		for _, o := range *obs {
			o.DoneWaiting(l, t)
		}
	}
}

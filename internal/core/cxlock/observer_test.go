package cxlock

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"machlock/internal/sched"
)

// auditObserver checks the Observer contract as events arrive: holds form
// a per-(thread, lock) multiset that never goes negative, upgrades and
// downgrades leave it unchanged, and Waiting/DoneWaiting bracket properly
// (a thread is never mid-wait at the moment it acquires).
type auditObserver struct {
	mu    sync.Mutex
	holds map[*sched.Thread]int
	waits map[*sched.Thread]int // waiting minus doneWaiting; 0 or 1
	// bracketed counts acquisitions that were preceded by a completed
	// Waiting/DoneWaiting bracket for the acquiring thread.
	bracketed int
	waited    map[*sched.Thread]bool
	errs      []string
}

func newAuditObserver() *auditObserver {
	return &auditObserver{
		holds:  make(map[*sched.Thread]int),
		waits:  make(map[*sched.Thread]int),
		waited: make(map[*sched.Thread]bool),
	}
}

func (a *auditObserver) failf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf(format, args...))
}

func (a *auditObserver) Acquired(l *Lock, t *sched.Thread) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.waits[t] != 0 {
		a.failf("%s acquired while mid-wait", t.Name())
	}
	if a.waited[t] {
		a.bracketed++
		a.waited[t] = false
	}
	a.holds[t]++
}

func (a *auditObserver) Released(l *Lock, t *sched.Thread) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.holds[t]--
	if a.holds[t] < 0 {
		a.failf("%s hold count went negative", t.Name())
	}
}

func (a *auditObserver) Waiting(l *Lock, t *sched.Thread) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.waits[t]++
	if a.waits[t] != 1 {
		a.failf("%s nested Waiting (count %d)", t.Name(), a.waits[t])
	}
}

func (a *auditObserver) DoneWaiting(l *Lock, t *sched.Thread) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.waits[t]--
	if a.waits[t] != 0 {
		a.failf("%s DoneWaiting without Waiting", t.Name())
	}
	a.waited[t] = true
}

// check asserts the end-of-run invariants: all brackets closed, all holds
// released, and no violation was recorded mid-run.
func (a *auditObserver) check(t *testing.T) {
	t.Helper()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.errs {
		t.Error(e)
	}
	for th, n := range a.holds {
		if n != 0 {
			t.Errorf("%s ends with %d unreleased holds", th.Name(), n)
		}
	}
	for th, n := range a.waits {
		if n != 0 {
			t.Errorf("%s ends mid-wait (%d)", th.Name(), n)
		}
	}
}

// TestObserverWaitBracketsContendedAcquisition pins the bracket contract:
// a contended acquisition produces Waiting then DoneWaiting then Acquired
// for the waiting thread, and the writer that blocked it sees none of the
// wait events.
func TestObserverWaitBracketsContendedAcquisition(t *testing.T) {
	rec := newAuditObserver()
	SetObserver(rec)
	defer SetObserver(nil)

	l := New(true)
	w := sched.New("writer")
	l.Write(w)
	readers := make([]*sched.Thread, 3)
	for i := range readers {
		readers[i] = sched.Go(fmt.Sprintf("reader%d", i), func(self *sched.Thread) {
			l.Read(self)
			l.Done(self)
		})
	}
	// Wait until every reader is parked on the lock, so each acquisition
	// is genuinely contended.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec.mu.Lock()
		parked := 0
		for _, n := range rec.waits {
			parked += n
		}
		rec.mu.Unlock()
		if parked == len(readers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readers never parked")
		}
		time.Sleep(time.Millisecond)
	}
	l.Done(w)
	for _, r := range readers {
		r.Join()
	}
	rec.check(t)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.bracketed != len(readers) {
		t.Fatalf("bracketed acquisitions = %d, want %d", rec.bracketed, len(readers))
	}
	if rec.waited[w] {
		t.Fatal("uncontended writer saw wait events")
	}
}

// TestObserverHoldBalanceAcrossUpgradesConcurrent hammers one sleepable
// lock from many threads through every mode transition — read, write,
// upgrade (including failed upgrades, which release the hold), downgrade,
// try variants — and checks the hold multiset stays balanced. Run with
// -race: the audit observer also makes the callback paths themselves
// racy if the lock invokes them under insufficient ordering.
func TestObserverHoldBalanceAcrossUpgradesConcurrent(t *testing.T) {
	rec := newAuditObserver()
	SetObserver(rec)
	defer SetObserver(nil)

	l := New(true)
	const threads = 8
	const rounds = 300
	ths := make([]*sched.Thread, threads)
	for i := range ths {
		ths[i] = sched.Go(fmt.Sprintf("mix%d", i), func(self *sched.Thread) {
			for n := 0; n < rounds; n++ {
				switch n % 5 {
				case 0:
					l.Read(self)
					l.Done(self)
				case 1:
					l.Write(self)
					l.WriteToRead(self) // downgrade: hold count unchanged
					l.Done(self)
				case 2:
					l.Read(self)
					if l.ReadToWrite(self) {
						// Upgrade failed: the read hold is already
						// released; nothing more to undo.
						continue
					}
					l.Done(self)
				case 3:
					if l.TryWrite(self) {
						l.Done(self)
					}
				case 4:
					if l.TryRead(self) {
						if l.TryReadToWrite(self) {
							l.Done(self)
						} else {
							l.Done(self)
						}
					}
				}
			}
		})
	}
	for _, th := range ths {
		th.Join()
	}
	rec.check(t)
}

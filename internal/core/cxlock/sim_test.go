package cxlock

// Machsim protocol suite for the complex lock: the paper's invariants
// (mutual exclusion, writer priority, upgrade/downgrade recovery, reader-
// bias revocation safety) checked over explored schedules instead of
// whatever interleavings the host scheduler happens to produce. The raw
// -race tests in cxlock_test.go/bias_test.go stay as smoke tests; these
// are the exhaustive (bounded) versions.

import (
	"testing"

	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// TestSimWriteExclusion: two writers and a reader on a spin-mode lock,
// explored to exhaustion under a two-preemption budget. The shadow model
// checks mutual exclusion at every grant; the at-end check catches lost
// updates the model cannot see.
func TestSimWriteExclusion(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{Name: "sim.wx"})
		s.Label(l, "sim.wx")
		n := 0
		writer := func(t *sched.Thread) {
			for i := 0; i < 2; i++ {
				l.Write(t)
				n++
				l.Done(t)
			}
		}
		s.Spawn("w0", writer)
		s.Spawn("w1", writer)
		s.Spawn("r", func(t *sched.Thread) {
			l.Read(t)
			v := n
			l.Done(t)
			if v < 0 || v > 4 {
				s.Fail("reader saw impossible count %d", v)
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 4 {
				fail("lost update: n=%d, want 4", n)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimSleepModeBlocking: same shape on a Sleep lock, so contention goes
// through the assert_wait/thread_block protocol instead of spinning — the
// harness schedules the block and wakeup explicitly, and a lost wakeup
// would surface as a deadlock violation.
func TestSimSleepModeBlocking(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{Sleep: true, Name: "sim.sleep"})
		s.Label(l, "sim.sleep")
		n := 0
		body := func(t *sched.Thread) {
			l.Write(t)
			n++
			l.Done(t)
			l.Read(t)
			_ = n
			l.Done(t)
		}
		s.Spawn("a", body)
		s.Spawn("b", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 2 {
				fail("n=%d, want 2", n)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimWriterPriority: while a writer's request is outstanding, no new
// reader may be granted the lock (Section 6: pending writers gate new
// readers). The model's writer-priority checker verifies every CxReadGrant
// against the wantWrite/wantUpgrade state; exploring the three-thread race
// exercises the gate on schedules where the reader arrives mid-drain.
func TestSimWriterPriority(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{Name: "sim.prio"})
		s.Label(l, "sim.prio")
		s.Spawn("r0", func(t *sched.Thread) {
			l.Read(t)
			l.Done(t)
		})
		s.Spawn("w", func(t *sched.Thread) {
			l.Write(t)
			l.Done(t)
		})
		s.Spawn("r1", func(t *sched.Thread) {
			l.Read(t)
			l.Done(t)
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimUpgradeDowngrade: two readers race ReadToWrite. Exactly one
// upgrade wins; the loser's read hold is gone and it must restart from
// scratch (the recovery burden of Section 7.2). The winner downgrades and
// releases. Explored over every single-preemption schedule.
func TestSimUpgradeDowngrade(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{Name: "sim.upg"})
		s.Label(l, "sim.upg")
		n := 0
		failures := 0
		body := func(t *sched.Thread) {
			for {
				l.Read(t)
				if l.ReadToWrite(t) {
					// Upgrade failed: the read hold has been released,
					// restart the whole operation.
					failures++
					if failures > 8 {
						s.Fail("upgrade livelock: %d consecutive failures", failures)
					}
					continue
				}
				n++
				l.WriteToRead(t)
				l.Done(t)
				return
			}
		}
		s.Spawn("u0", body)
		s.Spawn("u1", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 2 {
				fail("n=%d, want 2 (one increment per upgrader)", n)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimRecursiveHolder: the recursive holder re-acquires in both modes
// and unwinds while a second writer contends; the model tracks recursion
// depth through CxRecurseGrant/CxReleaseRecursive and would flag a grant
// to the contender while the holder's standing persists.
func TestSimRecursiveHolder(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{Recursive: true, Name: "sim.rec"})
		s.Label(l, "sim.rec")
		n := 0
		s.Spawn("holder", func(t *sched.Thread) {
			l.Write(t)
			l.SetRecursive(t)
			l.Read(t)  // recursive read grant
			l.Write(t) // recursion depth 1
			n++
			l.Done(t) // pops the read hold (readCount first)
			l.Done(t) // pops the recursion level
			l.ClearRecursive(t)
			l.Done(t) // releases the write hold
		})
		s.Spawn("contender", func(t *sched.Thread) {
			l.Write(t)
			n++
			l.Done(t)
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 2 {
				fail("n=%d, want 2", n)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimBiasRevocationWindow: the BRAVO publish-to-recheck window. A
// biased reader is preempted between publishing its slot and rechecking
// the armed flag (the CxBiasPublish yield) while a writer revokes; the
// model's bias-revocation checker asserts no fast-path grant lands during
// a revocation and no writer runs while a slot is occupied.
func TestSimBiasRevocationWindow(t *testing.T) {
	biasedGrants := int64(0)
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{ReaderBias: true, Name: "sim.bias"})
		s.Label(l, "sim.bias")
		n := 0
		reader := func(t *sched.Thread) {
			for i := 0; i < 2; i++ {
				l.Read(t)
				v := n
				_ = v
				l.Done(t)
			}
		}
		s.Spawn("r0", reader)
		s.Spawn("r1", reader)
		s.Spawn("w", func(t *sched.Thread) {
			l.Write(t)
			n++
			l.Done(t)
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if n != 1 {
				fail("n=%d, want 1", n)
			}
			biasedGrants += l.Stats().BiasedReads
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
	if biasedGrants == 0 {
		t.Fatal("exploration never exercised the bias fast path")
	}
}

// TestSimBiasReadersScheduled is the machsim version of
// TestBiasReadersRaceClean (which remains as a short raw -race smoke
// test): biased readers iterate over a shared structure while a writer
// mutates it, under explored and seeded-random schedules instead of host
// timing. The acquisition counts are exact because the schedule space,
// unlike the host scheduler, cannot drop iterations.
func TestSimBiasReadersScheduled(t *testing.T) {
	const (
		readers = 2
		iters   = 3
		writes  = 2
	)
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{ReaderBias: true, Name: "sim.bias.sched"})
		s.Label(l, "sim.bias.sched")
		shared := map[int]int{0: 0}
		for i := 0; i < readers; i++ {
			s.Spawn("r", func(t *sched.Thread) {
				for j := 0; j < iters; j++ {
					l.Read(t)
					_ = shared[0]
					l.Done(t)
				}
			})
		}
		s.Spawn("w", func(t *sched.Thread) {
			for j := 0; j < writes; j++ {
				l.Write(t)
				shared[0]++
				l.Done(t)
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			st := l.Stats()
			if st.ReadAcquisitions != readers*iters {
				fail("ReadAcquisitions=%d, want %d", st.ReadAcquisitions, readers*iters)
			}
			if st.WriteAcquisitions != writes {
				fail("WriteAcquisitions=%d, want %d", st.WriteAcquisitions, writes)
			}
			if shared[0] != writes {
				fail("shared=%d, want %d", shared[0], writes)
			}
		})
	}
	machsim.Check(t, machsim.Random(scenario, 200, 11, machsim.Options{}))
	machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 400}, machsim.Options{}))
}

// TestSimTryOpsUnderFaults: every try-style operation under fault
// injection. Forced failures must leave the lock in a releasable state —
// in particular a failed TryReadToWrite keeps the read hold intact, and a
// forced TryRead/TryWrite failure leaves nothing to release.
func TestSimTryOpsUnderFaults(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		l := NewWith(Options{Name: "sim.try"})
		s.Label(l, "sim.try")
		s.Spawn("tryer", func(t *sched.Thread) {
			if l.TryRead(t) {
				if l.TryReadToWrite(t) {
					l.Done(t) // write hold
				} else {
					l.Done(t) // read hold intact per the contract
				}
			}
			if l.TryWrite(t) {
				l.Done(t)
			}
		})
		s.Spawn("peer", func(t *sched.Thread) {
			if l.TryWrite(t) {
				l.Done(t)
			}
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if l.HeldForWrite() || l.Readers() != 0 {
				fail("lock left held: write=%v readers=%d", l.HeldForWrite(), l.Readers())
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 1500}, machsim.Options{FaultTries: true})
	machsim.Check(t, res)
}

// Package refcount implements the existence-coordination half of the
// paper (Sections 2 and 8): reference counts that guarantee a data
// structure exists whenever any processor could dereference a pointer to
// it.
//
// The protocol, exactly as the paper states it:
//
//   - An object is created with a single reference held by its creator.
//   - New references are obtained only by cloning an existing one while
//     holding the object's lock (or another guarantee that the original
//     cannot vanish mid-clone); cloning never blocks, so it may be done
//     while holding other locks.
//   - Releasing a reference may destroy the object — which frees storage
//     and may block — so it may NOT be done while holding any non-sleep
//     lock, nor between an assert_wait and its thread_block.
//   - When the count reaches zero there are no operations in progress, no
//     pointers, and no way to invoke new operations, so the object and its
//     data structure are destroyed.
//
// Count is the basic lock-protected count; Atomic is a lock-free variant
// provided for the E6 comparison with modern practice ("Reference counts
// may be best done by putting a mutex around an integer variable" is
// exactly how Mach does it; the paper predates ubiquitous atomic RMW
// refcounts).
package refcount

import (
	"fmt"
	"sync/atomic"

	"machlock/internal/machsim/simhook"
	"machlock/internal/trace"
)

// Count is a reference count protected by its object's lock: every method
// must be called with that lock held (the package cannot check this itself;
// object.Object wires the check up). The zero value is a dead count; use
// Init.
type Count struct {
	n int32

	// class is the optional observability registration (KindRef); nil
	// means untraced. Immutable after SetClass.
	class *trace.Class
}

// SetClass registers the count with the observability layer; clones and
// releases then appear in the flight recorder and per-class profile. Call
// before concurrent use.
func (c *Count) SetClass(cl *trace.Class) { c.class = cl }

// Init sets the count to n references (normally 1: the creator's).
func (c *Count) Init(n int32) {
	if n < 0 {
		panic("refcount: negative initial count")
	}
	c.n = n
}

// Refs returns the current count.
func (c *Count) Refs() int32 { return c.n }

// Clone acquires an additional reference by cloning an existing one. The
// caller must hold the object's lock and must itself hold a reference —
// cloning a dead (zero) count is the use-after-free the whole protocol
// exists to prevent, and panics.
func (c *Count) Clone() {
	simhook.Yield(simhook.RefClone, c)
	if c.n <= 0 {
		panic(fmt.Sprintf("refcount: cloning a dead reference (count %d)", c.n))
	}
	c.n++
	simhook.Note(simhook.RefClone, c, int64(c.n))
	c.class.RefClone(int64(c.n))
}

// Release drops one reference, returning true when the count reaches zero
// and the caller must destroy the object. Over-release panics.
func (c *Count) Release() bool {
	simhook.Yield(simhook.RefRelease, c)
	if c.n <= 0 {
		panic(fmt.Sprintf("refcount: releasing unheld reference (count %d)", c.n))
	}
	c.n--
	simhook.Note(simhook.RefRelease, c, int64(c.n))
	c.class.RefRelease(int64(c.n))
	return c.n == 0
}

// Atomic is a lock-free reference count over hardware atomics — the modern
// alternative Mach could not assume in 1991. Used by experiment E6 to
// quantify what the lock-protected discipline costs.
type Atomic struct {
	n     atomic.Int32
	class *trace.Class
}

// Init sets the count.
func (a *Atomic) Init(n int32) { a.n.Store(n) }

// SetClass registers the count with the observability layer (see
// Count.SetClass).
func (a *Atomic) SetClass(cl *trace.Class) { a.class = cl }

// Refs returns the current count.
func (a *Atomic) Refs() int32 { return a.n.Load() }

// Clone increments the count, panicking if it observes a dead count.
func (a *Atomic) Clone() {
	simhook.Yield(simhook.RefClone, a)
	n := a.n.Add(1)
	if n <= 1 {
		panic("refcount: cloning a dead reference (atomic)")
	}
	simhook.Note(simhook.RefClone, a, int64(n))
	a.class.RefClone(int64(n))
}

// Release decrements, returning true at zero.
func (a *Atomic) Release() bool {
	simhook.Yield(simhook.RefRelease, a)
	n := a.n.Add(-1)
	if n < 0 {
		panic("refcount: releasing unheld reference (atomic)")
	}
	simhook.Note(simhook.RefRelease, a, int64(n))
	a.class.RefRelease(int64(n))
	return n == 0
}

package refcount

// Machsim suite for the reference-count protocols, plus the fuzz target
// the issue asks for: arbitrary (but legal) clone/release sequences
// across two threads, executed under seeded schedule exploration with the
// harness's ref-skew and ref-resurrect checkers watching every move.

import (
	"testing"

	"machlock/internal/core/splock"
	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// TestSimAtomicCloneRelease explores the lock-free count: two threads
// clone and release concurrently around a base reference. Every schedule
// must end at exactly the base count with no transition skipped (the
// model cross-checks each note against its own ledger).
func TestSimAtomicCloneRelease(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		var c Atomic
		c.Init(1)
		s.Label(&c, "atomic")
		body := func(_ *sched.Thread) {
			c.Clone()
			c.Clone()
			if c.Release() {
				s.Fail("release of a covered reference reported last")
			}
			if c.Release() {
				s.Fail("release of a covered reference reported last")
			}
		}
		s.Spawn("a", body)
		s.Spawn("b", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if got := c.Refs(); got != 1 {
				fail("refs=%d, want 1", got)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimCountUnderLock exercises the lock-covered variant the paper's
// objects use: a plain Count whose mutations are serialized by a simple
// lock, with the final release racing between two holders.
func TestSimCountUnderLock(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		var (
			l splock.Lock
			c Count
		)
		c.Init(2) // one reference per thread
		s.Label(&c, "locked")
		lasts := 0
		body := func(_ *sched.Thread) {
			l.Lock()
			c.Clone()
			l.Unlock()
			l.Lock()
			if c.Release() {
				s.Fail("covered release reported last")
			}
			l.Unlock()
			l.Lock()
			if c.Release() {
				lasts++
			}
			l.Unlock()
		}
		s.Spawn("a", body)
		s.Spawn("b", body)
		s.AtEnd(func(fail func(string, ...any)) {
			if lasts != 1 {
				fail("last-reference transition fired %d times, want 1", lasts)
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// FuzzSimRefcountSequences drives arbitrary clone/release interleavings
// through the harness. Each thread starts owning one reference and the
// byte string decides, per thread, when it clones and when it releases;
// ownership is tracked so every operation is legal (the paper's rule: you
// may only clone or release a reference you hold). The shadow model must
// never flag a legal sequence, and the count must land on zero exactly at
// the last release.
func FuzzSimRefcountSequences(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Add([]byte{1, 0})
	f.Add([]byte{0, 1, 1, 0, 0, 1, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 16 {
			ops = ops[:16]
		}
		var seed int64 = 1
		for _, b := range ops {
			seed = seed*131 + int64(b)
		}
		scenario := func(s *machsim.Sim) {
			var c Atomic
			c.Init(2) // one reference per thread
			s.Label(&c, "fuzzed")
			lasts := 0
			half := (len(ops) + 1) / 2
			mk := func(seq []byte) func(*sched.Thread) {
				return func(_ *sched.Thread) {
					owned := 1
					for _, op := range seq {
						if op%2 == 0 {
							c.Clone()
							owned++
						} else if owned > 1 {
							if c.Release() {
								s.Fail("covered release reported last")
							}
							owned--
						}
					}
					for ; owned > 0; owned-- {
						if c.Release() {
							lasts++
						}
					}
				}
			}
			s.Spawn("a", mk(ops[:half]))
			s.Spawn("b", mk(ops[half:]))
			s.AtEnd(func(fail func(string, ...any)) {
				if lasts != 1 {
					fail("last-reference transition fired %d times, want 1", lasts)
				}
				if got := c.Refs(); got != 0 {
					fail("refs=%d after all releases, want 0", got)
				}
			})
		}
		machsim.Check(t, machsim.Random(scenario, 4, seed, machsim.Options{}))
		machsim.Check(t, machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 1, MaxRuns: 64}, machsim.Options{}))
	})
}

package refcount

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCountLifecycle(t *testing.T) {
	var c Count
	c.Init(1)
	if c.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", c.Refs())
	}
	c.Clone()
	c.Clone()
	if c.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", c.Refs())
	}
	if c.Release() {
		t.Fatal("release at 3 reported zero")
	}
	if c.Release() {
		t.Fatal("release at 2 reported zero")
	}
	if !c.Release() {
		t.Fatal("final release did not report zero")
	}
}

func TestCloneDeadPanics(t *testing.T) {
	var c Count
	c.Init(1)
	c.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("cloning dead count did not panic")
		}
	}()
	c.Clone()
}

func TestOverReleasePanics(t *testing.T) {
	var c Count
	c.Init(1)
	c.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	c.Release()
}

func TestNegativeInitPanics(t *testing.T) {
	var c Count
	defer func() {
		if recover() == nil {
			t.Fatal("negative init did not panic")
		}
	}()
	c.Init(-1)
}

func TestAtomicLifecycle(t *testing.T) {
	var a Atomic
	a.Init(1)
	a.Clone()
	if a.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", a.Refs())
	}
	if a.Release() {
		t.Fatal("early release reported zero")
	}
	if !a.Release() {
		t.Fatal("final release did not report zero")
	}
}

func TestAtomicConcurrentCloneRelease(t *testing.T) {
	var a Atomic
	a.Init(1)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				a.Clone()
				if a.Release() {
					t.Error("count hit zero while creator ref held")
				}
			}
		}()
	}
	wg.Wait()
	if a.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", a.Refs())
	}
	if !a.Release() {
		t.Fatal("creator release did not reach zero")
	}
}

func TestAtomicOverReleasePanics(t *testing.T) {
	var a Atomic
	a.Init(0)
	defer func() {
		if recover() == nil {
			t.Fatal("atomic over-release did not panic")
		}
	}()
	a.Release()
}

func TestAtomicCloneDeadPanics(t *testing.T) {
	var a Atomic
	a.Init(0)
	defer func() {
		if recover() == nil {
			t.Fatal("atomic clone-dead did not panic")
		}
	}()
	a.Clone()
}

// Property: for any sequence of clones and releases that never over-
// releases, the count equals init + clones - releases and reaches zero
// exactly when they balance.
func TestCountBalanceQuick(t *testing.T) {
	f := func(ops []bool) bool {
		var c Count
		c.Init(1)
		live := int32(1)
		for _, clone := range ops {
			if clone {
				c.Clone()
				live++
			} else if live > 1 {
				if c.Release() {
					return false // hit zero with refs outstanding
				}
				live--
			}
		}
		if c.Refs() != live {
			return false
		}
		for live > 1 {
			if c.Release() {
				return false
			}
			live--
		}
		return c.Release()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

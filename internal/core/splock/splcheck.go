package splock

import (
	"fmt"
	"sync"
	"sync/atomic"

	"machlock/internal/hw"
)

// Section 7 of the paper derives a design rule from the interrupt-barrier
// deadlock: "each lock must always be acquired at the same interrupt
// priority level (spl0, splvm, splnet, splclock, etc.), and held at that
// level or higher… This notion of associating a single interrupt priority
// level with each lock is a good design principle."
//
// SPLLock enforces that rule on the simulated machine: it binds itself to
// the SPL of its first acquisition and reports (or, if Fatal, panics on)
// any acquisition at a different level. It also checks the second half of
// the rule — the holder may raise but never lower its SPL below the lock's
// level while holding it — at release time.
type SPLLock struct {
	sim *SimLock

	// Fatal makes violations panic instead of being counted.
	Fatal bool

	mu        sync.Mutex
	bound     bool
	level     hw.Level
	holderSPL hw.Level

	violations atomic.Int64
	lastReport atomic.Value // string
}

// NewSPL creates an SPL-checked simulated simple lock. The lock binds to
// the interrupt priority level of its first acquisition; pass an explicit
// level via Bind to fix it up front.
func NewSPL(m *hw.Machine, p Policy) *SPLLock {
	return &SPLLock{sim: NewSimWith(Opts{Machine: m, Algorithm: p})}
}

// Bind fixes the lock's required SPL before first use.
func (l *SPLLock) Bind(level hw.Level) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bound && l.level != level {
		panic(fmt.Sprintf("splock: rebinding SPL lock from %v to %v", l.level, level))
	}
	l.bound = true
	l.level = level
}

// Level returns the bound SPL and whether the lock is bound yet.
func (l *SPLLock) Level() (hw.Level, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level, l.bound
}

// Lock acquires the lock from cpu, checking that the CPU is at the lock's
// bound SPL. The first acquisition binds the level if Bind was not called.
func (l *SPLLock) Lock(c *hw.CPU) {
	l.check(c, c.SPL())
	l.sim.Lock(c) //machlock:holds — wrapper: the hold escapes to Lock's caller
	l.mu.Lock()
	l.holderSPL = c.SPL()
	l.mu.Unlock()
}

// TryLock makes a single attempt, with the same SPL check.
func (l *SPLLock) TryLock(c *hw.CPU) bool {
	l.check(c, c.SPL())
	if !l.sim.TryLock(c) { //machlock:holds — wrapper: the hold escapes to TryLock's caller
		return false
	}
	l.mu.Lock()
	l.holderSPL = c.SPL()
	l.mu.Unlock()
	return true
}

// Unlock releases the lock, checking that the holder did not lower its SPL
// below the lock's level while holding ("held at that level or higher").
// The paper requires release at the same priority, because complex locks
// built on the interlock lock and unlock it around every operation.
func (l *SPLLock) Unlock(c *hw.CPU) {
	l.mu.Lock()
	level, bound := l.level, l.bound
	l.mu.Unlock()
	if bound && c.SPL() < level {
		l.violate(fmt.Sprintf(
			"splock: cpu %d releasing SPL lock bound to %v while at %v (lowered while held)",
			c.ID(), level, c.SPL()))
	}
	l.sim.Unlock(c)
}

func (l *SPLLock) check(c *hw.CPU, at hw.Level) {
	l.mu.Lock()
	if !l.bound {
		l.bound = true
		l.level = at
		l.mu.Unlock()
		return
	}
	level := l.level
	l.mu.Unlock()
	if at != level {
		l.violate(fmt.Sprintf(
			"splock: cpu %d acquiring SPL lock bound to %v while at %v",
			c.ID(), level, at))
	}
}

func (l *SPLLock) violate(msg string) {
	l.violations.Add(1)
	l.lastReport.Store(msg)
	if l.Fatal {
		panic(msg)
	}
}

// Violations returns the number of SPL-consistency violations observed.
func (l *SPLLock) Violations() int64 { return l.violations.Load() }

// LastViolation returns the most recent violation report, or "".
func (l *SPLLock) LastViolation() string {
	if s, ok := l.lastReport.Load().(string); ok {
		return s
	}
	return ""
}

// Stats exposes the underlying simulated lock's accounting.
func (l *SPLLock) Stats() SimStats { return l.sim.Stats() }

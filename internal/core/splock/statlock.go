package splock

import (
	"sync/atomic"
	"time"

	"machlock/internal/stats"
	"machlock/internal/trace"
)

// StatLock is the statistics variant of the simple lock: "A simple lock is
// stored in a C language int variable, which is part of a structure to
// allow the simple addition of debugging and statistics information"
// (Appendix A.1). It records acquisition counts, contention, hold-time and
// wait-time histograms — the data a kernel developer uses to find the
// coarse locks experiment E2 is about.
//
// The accounting costs two clock reads per critical section; use the plain
// Lock where that matters and this one while hunting contention.
type StatLock struct {
	name  string
	class *trace.Class
	l     Lock

	acquiredAt atomic.Int64 // ns timestamp of current acquisition

	acquisitions atomic.Int64
	contended    atomic.Int64
	hold         stats.Histogram
	wait         stats.Histogram
}

// NewStat creates a named statistics lock, registering its name as a spin
// class with the process-wide observability layer. Per-instance statistics
// are always on; the class profile and flight-recorder events follow the
// global trace switch.
func NewStat(name string) *StatLock {
	return &StatLock{name: name, class: trace.NewClass("splock", name, trace.KindSpin)}
}

// Name returns the lock's name.
func (s *StatLock) Name() string { return s.name }

// Lock acquires the lock, recording wait time if contended.
func (s *StatLock) Lock() {
	if s.l.TryLock() { //machlock:holds — wrapper: the hold escapes to Lock's caller
		s.acquisitions.Add(1)
		s.acquiredAt.Store(time.Now().UnixNano())
		s.class.Acquired(false, 0)
		return
	}
	s.contended.Add(1)
	s.class.Waiting()
	start := time.Now()
	s.l.Lock() //machlock:holds — wrapper: the hold escapes to Lock's caller
	waitNs := time.Since(start).Nanoseconds()
	s.wait.Observe(waitNs)
	s.acquisitions.Add(1)
	s.acquiredAt.Store(time.Now().UnixNano())
	s.class.DoneWaiting(waitNs)
	s.class.Acquired(true, waitNs)
}

// TryLock makes a single attempt.
func (s *StatLock) TryLock() bool {
	if !s.l.TryLock() { //machlock:holds — wrapper: the hold escapes to TryLock's caller
		return false
	}
	s.acquisitions.Add(1)
	s.acquiredAt.Store(time.Now().UnixNano())
	s.class.Acquired(false, 0)
	return true
}

// Unlock releases the lock, recording the hold time. The acquisition
// timestamp is consumed (swapped to zero) so an unmatched or duplicate
// unlock cannot observe a stale timestamp and record a bogus hold sample.
func (s *StatLock) Unlock() {
	holdNs := int64(-1)
	if at := s.acquiredAt.Swap(0); at != 0 {
		holdNs = time.Now().UnixNano() - at
		s.hold.Observe(holdNs)
	}
	s.l.Unlock()
	s.class.Released(holdNs)
}

var _ Mutex = (*StatLock)(nil)

// Report is a snapshot of a StatLock's accounting.
type Report struct {
	Name         string
	Acquisitions int64
	Contended    int64
	// ContentionRate is contended acquisitions / total acquisitions.
	ContentionRate float64
	MeanHoldNs     float64
	P99HoldNs      int64
	MeanWaitNs     float64
	MaxWaitNs      int64
}

// Report returns the lock's statistics.
func (s *StatLock) Report() Report {
	acq := s.acquisitions.Load()
	con := s.contended.Load()
	r := Report{
		Name:         s.name,
		Acquisitions: acq,
		Contended:    con,
		MeanHoldNs:   s.hold.Mean(),
		P99HoldNs:    s.hold.Quantile(0.99),
		MeanWaitNs:   s.wait.Mean(),
		MaxWaitNs:    s.wait.Max(),
	}
	if acq > 0 {
		r.ContentionRate = float64(con) / float64(acq)
	}
	return r
}

package splock

import (
	"sync"
	"sync/atomic"
)

// Observer receives simple-lock event callbacks, closing the gap the
// complex-lock observer fan-out (cxlock.Observer) left: spin locks now
// participate in the continuous monitor's census and any other tool that
// watches lock traffic. Simple locks carry no thread identity — Mach's
// simple_lock takes no thread argument and neither does ours — so the
// callbacks identify only the lock; tools needing per-thread attribution
// use the complex-lock observers or the trace-layer blame profiles.
//
// Callbacks run on the operating thread, outside any lock word
// manipulation: Acquired after the test-and-set succeeds, Released after
// the store that frees the lock, Waiting/DoneWaiting bracketing a
// contended spin phase. An observer must not acquire the observed lock
// (immediate self-deadlock on the spin) and should return quickly — it
// runs inside what a real kernel would count as the critical section's
// shoulder.
//
// The registration discipline matches cxlock: an immutable slice swapped
// atomically, so the disabled fast path costs one atomic load and a nil
// check per operation.
type Observer interface {
	Acquired(l *Lock, contended bool)
	Released(l *Lock)
	Waiting(l *Lock)
	DoneWaiting(l *Lock)
}

// spObservers is the registered observer list; nil when empty.
var spObservers atomic.Pointer[[]Observer]

// spObserversOn mirrors "spObservers != nil" as a plain atomic bool: the
// generic pointer load is too costly for the inliner, and the bool gate
// keeps the no-observer dispatch inlined into every lock operation.
var spObserversOn atomic.Bool

// spObserversMu serializes list mutations; delivery never takes it.
var spObserversMu sync.Mutex

// AddObserver appends o to the observer list. Install before the locks
// being observed are in use; events from operations already in flight may
// be missed.
func AddObserver(o Observer) {
	if o == nil {
		panic("splock: AddObserver(nil)")
	}
	spObserversMu.Lock()
	defer spObserversMu.Unlock()
	var next []Observer
	if cur := spObservers.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, o)
	spObservers.Store(&next)
	spObserversOn.Store(true)
}

// RemoveObserver removes the first registered occurrence of o. Removing an
// observer that is not installed is a no-op; events already fanning out
// when RemoveObserver returns may still be delivered.
func RemoveObserver(o Observer) {
	spObserversMu.Lock()
	defer spObserversMu.Unlock()
	cur := spObservers.Load()
	if cur == nil {
		return
	}
	for i, x := range *cur {
		if x == o {
			next := append(append([]Observer{}, (*cur)[:i]...), (*cur)[i+1:]...)
			if len(next) == 0 {
				spObserversOn.Store(false)
				spObservers.Store(nil)
			} else {
				spObservers.Store(&next)
			}
			return
		}
	}
}

// The ob* dispatchers split the any-observers check (inlined into every
// lock operation) from the fan-out loop (outlined, only reached with
// observers installed), so unobserved locks pay one atomic load and a
// branch.

func obAcquired(l *Lock, contended bool) {
	if spObserversOn.Load() {
		fanAcquired(l, contended)
	}
}

func fanAcquired(l *Lock, contended bool) {
	if obs := spObservers.Load(); obs != nil {
		for _, o := range *obs {
			o.Acquired(l, contended)
		}
	}
}

func obReleased(l *Lock) {
	if spObserversOn.Load() {
		fanReleased(l)
	}
}

func fanReleased(l *Lock) {
	if obs := spObservers.Load(); obs != nil {
		for _, o := range *obs {
			o.Released(l)
		}
	}
}

func obWaiting(l *Lock) {
	if spObserversOn.Load() {
		fanWaiting(l)
	}
}

func fanWaiting(l *Lock) {
	if obs := spObservers.Load(); obs != nil {
		for _, o := range *obs {
			o.Waiting(l)
		}
	}
}

func obDoneWaiting(l *Lock) {
	if spObserversOn.Load() {
		fanDoneWaiting(l)
	}
}

func fanDoneWaiting(l *Lock) {
	if obs := spObservers.Load(); obs != nil {
		for _, o := range *obs {
			o.DoneWaiting(l)
		}
	}
}

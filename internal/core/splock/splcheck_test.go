package splock

import (
	"strings"
	"testing"

	"machlock/internal/hw"
)

func TestSPLLockBindsToFirstAcquisition(t *testing.T) {
	m := hw.New(2)
	l := NewSPL(m, TASTTAS)
	c := m.CPU(0)

	c.SetSPL(hw.SPLVM)
	l.Lock(c)
	l.Unlock(c)
	if level, bound := l.Level(); !bound || level != hw.SPLVM {
		t.Fatalf("bound level = %v %v, want splvm", level, bound)
	}
	// Same level again: fine.
	l.Lock(c)
	l.Unlock(c)
	if l.Violations() != 0 {
		t.Fatalf("violations = %d", l.Violations())
	}
}

func TestSPLLockDetectsInconsistentLevel(t *testing.T) {
	// The exact §7 scenario precursor: one CPU takes the lock with
	// interrupts enabled, another with them disabled.
	m := hw.New(2)
	l := NewSPL(m, TASTTAS)
	p1, p2 := m.CPU(0), m.CPU(1)

	l.Lock(p1) // binds to spl0: "processor 1 has the lock with interrupts enabled"
	l.Unlock(p1)

	p2.SetSPL(hw.SPLVM) // "processor 2 has disabled interrupts"
	l.Lock(p2)
	l.Unlock(p2)
	if l.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", l.Violations())
	}
	if !strings.Contains(l.LastViolation(), "splvm") {
		t.Fatalf("report = %q", l.LastViolation())
	}
}

func TestSPLLockExplicitBind(t *testing.T) {
	m := hw.New(1)
	l := NewSPL(m, TTAS)
	l.Bind(hw.SPLVM)
	c := m.CPU(0)
	l.Lock(c) // at spl0 against a splvm-bound lock: violation
	l.Unlock(c)
	if l.Violations() == 0 {
		t.Fatal("acquisition below bound level not detected")
	}
}

func TestSPLLockRebindPanics(t *testing.T) {
	m := hw.New(1)
	l := NewSPL(m, TTAS)
	l.Bind(hw.SPLVM)
	defer func() {
		if recover() == nil {
			t.Fatal("rebinding did not panic")
		}
	}()
	l.Bind(hw.SPLCLOCK)
}

func TestSPLLockHeldAtLevelOrHigher(t *testing.T) {
	// "Increasing interrupt priority with increasing call depth is always
	// safe so long as the priority is consistent for each lock": raising
	// while held is fine, lowering below the lock's level is not.
	m := hw.New(1)
	l := NewSPL(m, TTAS)
	c := m.CPU(0)
	c.SetSPL(hw.SPLVM)
	l.Lock(c)
	c.SetSPL(hw.SPLCLOCK) // raise: allowed
	c.SetSPL(hw.SPLVM)    // back to the lock's level: allowed
	l.Unlock(c)
	if l.Violations() != 0 {
		t.Fatalf("raising while held counted as violation: %d", l.Violations())
	}

	c.SetSPL(hw.SPLVM)
	l.Lock(c)
	c.SetSPL(hw.SPL0) // lower below the lock's level while held
	l.Unlock(c)
	if l.Violations() != 1 {
		t.Fatalf("lowering while held not detected: %d", l.Violations())
	}
	c.SetSPL(hw.SPL0)
}

func TestSPLLockFatalPanics(t *testing.T) {
	m := hw.New(1)
	l := NewSPL(m, TTAS)
	l.Fatal = true
	l.Bind(hw.SPLVM)
	c := m.CPU(0)
	defer func() {
		if recover() == nil {
			t.Fatal("fatal violation did not panic")
		}
	}()
	l.Lock(c)
}

func TestSPLLockTryLock(t *testing.T) {
	m := hw.New(2)
	l := NewSPL(m, TTAS)
	a, b := m.CPU(0), m.CPU(1)
	if !l.TryLock(a) {
		t.Fatal("try on free lock failed")
	}
	if l.TryLock(b) {
		t.Fatal("try on held lock succeeded")
	}
	l.Unlock(a)
	if l.Stats().Acquisitions != 1 {
		t.Fatalf("acquisitions = %d", l.Stats().Acquisitions)
	}
}

package splock

import (
	"sync"
	"testing"
	"testing/quick"

	"machlock/internal/hw"
)

func TestLockZeroValueUnlocked(t *testing.T) {
	var l Lock
	if l.Locked() {
		t.Fatal("zero-value lock is locked")
	}
	if !l.TryLock() {
		t.Fatal("TryLock on fresh lock failed")
	}
	if !l.Locked() {
		t.Fatal("lock not locked after TryLock")
	}
	l.Unlock()
}

func TestLockMutualExclusion(t *testing.T) {
	var l Lock
	counter := 0
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*iters)
	}
}

func TestTryLockFailsWhenHeld(t *testing.T) {
	var l Lock
	l.Lock()
	if l.TryLock() {
		t.Fatal("TryLock succeeded on held lock")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on released lock")
	}
	l.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	var l Lock
	defer func() {
		if recover() == nil {
			t.Fatal("unlock of unlocked lock did not panic")
		}
	}()
	l.Unlock()
}

func TestNoopAlwaysSucceeds(t *testing.T) {
	var n Noop
	n.Lock()
	if !n.TryLock() {
		t.Fatal("Noop.TryLock returned false")
	}
	n.Unlock()
}

func TestMutexInterfaceSatisfied(t *testing.T) {
	for _, m := range []Mutex{&Lock{}, Noop{}} {
		m.Lock()
		m.Unlock()
		if !m.TryLock() {
			t.Fatal("TryLock failed")
		}
		m.Unlock()
	}
}

func TestPolicyStrings(t *testing.T) {
	if TAS.String() != "tas" || TTAS.String() != "ttas" || TASTTAS.String() != "tas+ttas" {
		t.Fatal("policy strings wrong")
	}
	if Policy(99).String() != "policy(?)" {
		t.Fatal("unknown policy string wrong")
	}
}

func TestSimLockBasic(t *testing.T) {
	for _, p := range []Policy{TAS, TTAS, TASTTAS} {
		m := hw.New(2)
		l := NewSim(m, p)
		c := m.CPU(0)
		l.Lock(c)
		if l.TryLock(m.CPU(1)) {
			t.Fatalf("%v: TryLock succeeded on held lock", p)
		}
		l.Unlock(c)
		if !l.TryLock(m.CPU(1)) {
			t.Fatalf("%v: TryLock failed on free lock", p)
		}
		l.Unlock(m.CPU(1))
		if l.Policy() != p {
			t.Fatalf("policy = %v, want %v", l.Policy(), p)
		}
	}
}

func TestSimLockMutualExclusion(t *testing.T) {
	for _, p := range []Policy{TAS, TTAS, TASTTAS} {
		m := hw.New(4)
		l := NewSim(m, p)
		counter := 0
		var wg sync.WaitGroup
		const iters = 300
		for i := 0; i < m.NCPU(); i++ {
			wg.Add(1)
			go func(c *hw.CPU) {
				defer wg.Done()
				for j := 0; j < iters; j++ {
					l.Lock(c)
					counter++
					l.Unlock(c)
				}
			}(m.CPU(i))
		}
		wg.Wait()
		if counter != m.NCPU()*iters {
			t.Fatalf("%v: counter = %d, want %d", p, counter, m.NCPU()*iters)
		}
		s := l.Stats()
		if s.Acquisitions != int64(m.NCPU()*iters) {
			t.Fatalf("%v: acquisitions = %d, want %d", p, s.Acquisitions, m.NCPU()*iters)
		}
	}
}

func TestSimLockUnlockOfUnlockedPanics(t *testing.T) {
	m := hw.New(1)
	l := NewSim(m, TTAS)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Unlock(m.CPU(0))
}

// TestTTASSpinsInCache verifies the paper's central claim about spin
// traffic. With write-back caches, two TAS spinners ping-pong the lock line
// (a bus transaction per attempt) while two TTAS spinners share it read-only
// and spin for free after the initial fills. With write-through caches even
// a single TAS spinner pays per attempt — the regime the paper cites as the
// reason TTAS must be substituted.
func TestTTASSpinsInCache(t *testing.T) {
	const iters = 100
	spinBus := func(p Policy) int64 {
		m := hw.New(3)
		l := NewSim(m, p)
		holder, s1, s2 := m.CPU(0), m.CPU(1), m.CPU(2)
		l.Lock(holder)
		m.ResetBus()
		for i := 0; i < iters; i++ {
			spinner := s1
			if i%2 == 1 {
				spinner = s2
			}
			switch p {
			case TAS:
				if l.TryLock(spinner) {
					t.Fatal("acquired held lock")
				}
			case TTAS:
				if l.cell.Load(spinner) == 0 {
					t.Fatal("observed free while held")
				}
			}
		}
		return m.BusTransactions()
	}
	tasBus := spinBus(TAS)
	ttasBus := spinBus(TTAS)
	if ttasBus > 2 {
		t.Fatalf("TTAS spin generated %d bus transactions, want <= 2 (cache-resident spin)", ttasBus)
	}
	if tasBus < int64(iters)-2 {
		t.Fatalf("TAS spin generated only %d bus transactions, expected ~1 per attempt", tasBus)
	}

	// Write-through: a single TAS spinner pays on every attempt.
	m := hw.NewWithConfig(hw.Config{CPUs: 2, WriteThrough: true})
	l := NewSim(m, TAS)
	l.Lock(m.CPU(0))
	m.ResetBus()
	for i := 0; i < iters; i++ {
		if l.TryLock(m.CPU(1)) {
			t.Fatal("acquired held lock")
		}
	}
	if got := m.BusTransactions(); got < int64(iters) {
		t.Fatalf("write-through TAS spin generated %d transactions, want >= %d", got, iters)
	}
}

func TestSimLockFirstTryAccounting(t *testing.T) {
	m := hw.New(1)
	l := NewSim(m, TASTTAS)
	c := m.CPU(0)
	for i := 0; i < 5; i++ {
		l.Lock(c)
		l.Unlock(c)
	}
	s := l.Stats()
	if s.FirstTry != 5 {
		t.Fatalf("uncontended first-try acquisitions = %d, want 5", s.FirstTry)
	}
	if s.SpinLoops != 0 {
		t.Fatalf("uncontended spins = %d, want 0", s.SpinLoops)
	}
}

// Property: any interleaving of try/lock/unlock from a single CPU keeps the
// lock state consistent (try succeeds iff free).
func TestSimLockSequentialQuick(t *testing.T) {
	f := func(ops []bool) bool {
		m := hw.New(1)
		l := NewSim(m, TASTTAS)
		c := m.CPU(0)
		held := false
		for _, acquire := range ops {
			if acquire {
				got := l.TryLock(c)
				if got == held {
					return false // succeeded while held, or failed while free
				}
				if got {
					held = true
				}
			} else if held {
				l.Unlock(c)
				held = false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTestAndClearEncoding(t *testing.T) {
	m := hw.New(2)
	l := NewSim(m, TCLEAR)
	if l.Policy().String() != "test-and-clear" {
		t.Fatalf("policy = %v", l.Policy())
	}
	c0, c1 := m.CPU(0), m.CPU(1)
	l.Lock(c0)
	if l.TryLock(c1) {
		t.Fatal("acquired held test-and-clear lock")
	}
	l.Unlock(c0)
	if !l.TryLock(c1) {
		t.Fatal("failed to acquire free test-and-clear lock")
	}
	l.Unlock(c1)

	// Contended mutual exclusion, same as the set-style policies.
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock(c)
				counter++
				l.Unlock(c)
			}
		}(m.CPU(i))
	}
	wg.Wait()
	if counter != 1000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestTestAndClearUnlockOfUnlockedPanics(t *testing.T) {
	m := hw.New(1)
	l := NewSim(m, TCLEAR)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.Unlock(m.CPU(0))
}

// TestTestAndClearSpinTrafficMatchesTAS: the paper's point is that all the
// hardware encodings share the same coherence behaviour; the spin-phase
// traffic of test-and-clear equals TAS's.
func TestTestAndClearSpinTrafficMatchesTAS(t *testing.T) {
	m := hw.New(3)
	l := NewSim(m, TCLEAR)
	l.Lock(m.CPU(0))
	m.ResetBus()
	for i := 0; i < 100; i++ {
		spinner := m.CPU(1 + i%2)
		if l.SpinOnce(spinner) {
			t.Fatal("acquired held lock")
		}
	}
	if got := m.BusTransactions(); got < 98 {
		t.Fatalf("test-and-clear spin traffic = %d, want ~1 per attempt like TAS", got)
	}
}

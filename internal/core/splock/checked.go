package splock

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/trace"
)

// Holder is what a checked lock knows about its acquirer. *sched.Thread
// implements it; the indirection keeps splock free of a dependency on the
// scheduler. NoteSpinAcquire/NoteSpinRelease maintain the per-thread count
// that makes sched.ThreadBlock panic while simple locks are held.
type Holder interface {
	NoteSpinAcquire()
	NoteSpinRelease()
	Name() string
}

// Checked is a debugging simple lock: it behaves like Lock but records its
// holder, panics on double acquisition by the same holder (self-deadlock),
// panics on release by a non-holder, and keeps acquisition statistics. It
// corresponds to the debug/statistics variant the paper says the simple
// lock structure was designed to admit.
type Checked struct {
	name  string
	class *trace.Class
	l     Lock

	mu         sync.Mutex
	holder     Holder
	acquiredAt int64 // ns; guarded by mu, set only while tracing

	acquisitions atomic.Int64
	contended    atomic.Int64
}

// NewChecked creates a named checked lock, registered as a spin class with
// the observability layer.
func NewChecked(name string) *Checked {
	return &Checked{name: name, class: trace.NewClass("splock", name, trace.KindSpin)}
}

// Name returns the lock's name.
func (c *Checked) Name() string { return c.name }

// Lock acquires the lock for h, panicking if h already holds it.
func (c *Checked) Lock(h Holder) {
	if h == nil {
		panic("splock: checked lock acquired with nil holder")
	}
	c.mu.Lock()
	if c.holder == h {
		c.mu.Unlock()
		panic(fmt.Sprintf("splock: %s: recursive simple_lock by %s (self-deadlock)",
			c.name, h.Name()))
	}
	c.mu.Unlock()
	tr := c.class.On()
	var waitNs int64
	contended := false
	if !c.l.TryLock() { //machlock:holds — wrapper: the hold escapes to Lock's caller
		c.contended.Add(1)
		contended = true
		var start time.Time
		if tr {
			start = time.Now()
			c.class.Waiting()
		}
		c.l.Lock() //machlock:holds — wrapper: the hold escapes to Lock's caller
		if tr {
			waitNs = time.Since(start).Nanoseconds()
			c.class.DoneWaiting(waitNs)
		}
	}
	c.mu.Lock()
	c.holder = h
	if tr {
		c.acquiredAt = time.Now().UnixNano()
	}
	c.mu.Unlock()
	h.NoteSpinAcquire()
	c.acquisitions.Add(1)
	c.class.Acquired(contended, waitNs)
}

// TryLock makes a single attempt for h.
func (c *Checked) TryLock(h Holder) bool {
	if h == nil {
		panic("splock: checked lock acquired with nil holder")
	}
	if !c.l.TryLock() { //machlock:holds — wrapper: the hold escapes to TryLock's caller
		return false
	}
	c.mu.Lock()
	c.holder = h
	if c.class.On() {
		c.acquiredAt = time.Now().UnixNano()
	}
	c.mu.Unlock()
	h.NoteSpinAcquire()
	c.acquisitions.Add(1)
	c.class.Acquired(false, 0)
	return true
}

// Unlock releases the lock, panicking if h is not the holder.
func (c *Checked) Unlock(h Holder) {
	c.mu.Lock()
	if c.holder != h {
		cur := "nobody"
		if c.holder != nil {
			cur = c.holder.Name()
		}
		c.mu.Unlock()
		panic(fmt.Sprintf("splock: %s: unlock by %s but held by %s",
			c.name, h.Name(), cur))
	}
	c.holder = nil
	holdNs := int64(-1)
	if at := c.acquiredAt; at != 0 {
		c.acquiredAt = 0
		holdNs = time.Now().UnixNano() - at
	}
	c.mu.Unlock()
	c.l.Unlock()
	h.NoteSpinRelease()
	c.class.Released(holdNs)
}

// HolderName returns the name of the current holder, or "" if unheld.
func (c *Checked) HolderName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.holder == nil {
		return ""
	}
	return c.holder.Name()
}

// Acquisitions returns the number of successful acquisitions.
func (c *Checked) Acquisitions() int64 { return c.acquisitions.Load() }

// Contended returns the number of acquisitions that did not succeed on the
// first attempt.
func (c *Checked) Contended() int64 { return c.contended.Load() }

package splock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"machlock/internal/trace"
)

// countingObserver tallies every callback; safe for concurrent delivery.
type countingObserver struct {
	acquired    atomic.Int64
	contended   atomic.Int64
	released    atomic.Int64
	waiting     atomic.Int64
	doneWaiting atomic.Int64
}

func (c *countingObserver) Acquired(l *Lock, contended bool) {
	c.acquired.Add(1)
	if contended {
		c.contended.Add(1)
	}
}
func (c *countingObserver) Released(l *Lock)    { c.released.Add(1) }
func (c *countingObserver) Waiting(l *Lock)     { c.waiting.Add(1) }
func (c *countingObserver) DoneWaiting(l *Lock) { c.doneWaiting.Add(1) }

func TestObserverSeesUncontendedTraffic(t *testing.T) {
	ob := &countingObserver{}
	AddObserver(ob)
	defer RemoveObserver(ob)

	l := &Lock{}
	for i := 0; i < 3; i++ {
		l.Lock()
		l.Unlock()
	}
	if !l.TryLock() {
		t.Fatal("TryLock failed on a free lock")
	}
	l.Unlock()

	if got := ob.acquired.Load(); got != 4 {
		t.Fatalf("acquired = %d, want 4", got)
	}
	if got := ob.released.Load(); got != 4 {
		t.Fatalf("released = %d, want 4", got)
	}
	if ob.contended.Load() != 0 {
		t.Fatal("uncontended traffic reported as contended")
	}
	// Wait brackets must balance even when none occurred.
	if ob.waiting.Load() != ob.doneWaiting.Load() {
		t.Fatalf("unbalanced wait brackets: %d vs %d", ob.waiting.Load(), ob.doneWaiting.Load())
	}
}

func TestObserverSeesContendedSpin(t *testing.T) {
	ob := &countingObserver{}
	AddObserver(ob)
	defer RemoveObserver(ob)

	// Cover both acquisition paths: the untraced fast path and the traced
	// (classed, tracing-on) lockTraced path must fan out identically.
	trace.Enable()
	defer trace.Disable()
	traced := &Lock{}
	traced.SetClass(trace.NewClass("splocktest", t.Name(), trace.KindSpin))
	for _, l := range []*Lock{{}, traced} {
		held := make(chan struct{})
		var wg sync.WaitGroup
		l.Lock()
		wg.Add(1)
		go func() {
			close(held)
			l.Lock() // spins until the holder lets go
			l.Unlock()
			wg.Done()
		}()
		<-held
		// Wait until the contender is provably inside its spin phase; the
		// observer's unbalanced Waiting count is the signal, not timing.
		for ob.waiting.Load() == ob.doneWaiting.Load() {
			runtime.Gosched()
		}
		l.Unlock()
		wg.Wait()
	}

	if ob.contended.Load() < 2 {
		t.Fatalf("contended = %d, want >= 2 (one per lock variant)", ob.contended.Load())
	}
	if ob.waiting.Load() != ob.doneWaiting.Load() {
		t.Fatalf("unbalanced wait brackets: %d vs %d", ob.waiting.Load(), ob.doneWaiting.Load())
	}
}

func TestObserverAddRemove(t *testing.T) {
	a, b := &countingObserver{}, &countingObserver{}
	AddObserver(a)
	AddObserver(b)
	l := &Lock{}
	l.Lock()
	l.Unlock()
	RemoveObserver(a)
	l.Lock()
	l.Unlock()
	RemoveObserver(b)
	l.Lock() // no observers registered: must not panic, must not count
	l.Unlock()
	RemoveObserver(a) // removing twice is a no-op

	if a.acquired.Load() != 1 {
		t.Fatalf("removed observer kept counting: %d", a.acquired.Load())
	}
	if b.acquired.Load() != 2 {
		t.Fatalf("second observer count = %d, want 2", b.acquired.Load())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AddObserver(nil) did not panic")
		}
	}()
	AddObserver(nil)
}

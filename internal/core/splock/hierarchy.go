package splock

import (
	"fmt"
	"sync/atomic"

	"machlock/internal/trace"
)

// The paper observes that "each kernel subsystem that uses locks must
// incorporate usage conventions that prevent deadlock" — typically ordering
// lock acquisitions by object type, and by address within a type. Hierarchy
// is a runtime checker for such conventions: locks are assigned ranks
// (lower rank = acquired earlier), and acquiring a lock whose rank is not
// strictly greater than every rank already held is reported as an ordering
// violation.
//
// The checker is advisory by design: Mach's locking model explicitly
// permits protocols that escape a single hierarchy (the pmap system lock,
// backout protocols), so violations are recorded and optionally fatal
// rather than unconditionally fatal.

// RankTracker is the per-thread state the hierarchy checker needs;
// *sched.Thread implements it.
type RankTracker interface {
	PushRank(rank int)
	PopRank(rank int)
	HeldRanks() []int
	Name() string
}

// Hierarchy checks lock-ordering conventions at runtime. Violations are
// counted per checker (Violations/LastViolation, both safe under
// concurrent readers — the report is published through an atomic) and
// reported process-wide through trace.HierarchyViolation, so the counts
// and last report surface in the Prometheus exposition, the expvar-style
// JSON, and the continuous monitor without a pointer to this checker.
type Hierarchy struct {
	// Fatal makes ordering violations panic instead of being counted.
	// Set at construction, before the checker is shared.
	Fatal bool

	violations atomic.Int64
	lastReport atomic.Value // string
}

// NewHierarchy creates a checker; if fatal, violations panic.
func NewHierarchy(fatal bool) *Hierarchy {
	return &Hierarchy{Fatal: fatal}
}

// OrderedLock is a checked lock with an ordering rank registered in a
// hierarchy. Two locks of the same type share a rank; the paper's
// "order by address" refinement is expressed by giving such locks the same
// rank and acquiring them via LockPair.
type OrderedLock struct {
	Checked
	h    *Hierarchy
	rank int
}

// NewOrdered creates a checked lock with the given name and rank in h.
func (h *Hierarchy) NewOrdered(name string, rank int) *OrderedLock {
	l := &OrderedLock{h: h, rank: rank}
	l.Checked.name = name
	return l
}

// Rank returns the lock's ordering rank.
func (l *OrderedLock) Rank() int { return l.rank }

// Lock acquires the lock for t, checking rank order against t's held locks.
func (l *OrderedLock) Lock(t RankTracker) {
	l.h.checkOrder(t, l)
	l.Checked.Lock(t.(Holder)) //machlock:holds — wrapper: the hold escapes to Lock's caller
	t.PushRank(l.rank)
}

// TryLock attempts the lock for t; a successful try still records the rank
// but never reports a violation — single attempts are precisely how code
// legitimately acquires locks against the usual order (the backout
// protocol of Section 5).
func (l *OrderedLock) TryLock(t RankTracker) bool {
	if !l.Checked.TryLock(t.(Holder)) { //machlock:holds — wrapper: the hold escapes to TryLock's caller
		return false
	}
	t.PushRank(l.rank)
	return true
}

// Unlock releases the lock for t.
func (l *OrderedLock) Unlock(t RankTracker) {
	t.PopRank(l.rank)
	l.Checked.Unlock(t.(Holder))
}

func (h *Hierarchy) checkOrder(t RankTracker, l *OrderedLock) {
	for _, held := range t.HeldRanks() {
		if held >= l.rank {
			msg := fmt.Sprintf(
				"splock: ordering violation: %s acquiring %q (rank %d) while holding rank %d",
				t.Name(), l.Name(), l.rank, held)
			h.violations.Add(1)
			h.lastReport.Store(msg)
			trace.HierarchyViolation(msg)
			if h.Fatal {
				panic(msg)
			}
			return
		}
	}
}

// Violations returns the number of ordering violations observed.
func (h *Hierarchy) Violations() int64 { return h.violations.Load() }

// LastViolation returns the most recent violation report, or "".
func (h *Hierarchy) LastViolation() string {
	if s, ok := h.lastReport.Load().(string); ok {
		return s
	}
	return ""
}

// LockPair acquires two same-rank locks in address order, the paper's
// convention for locking two objects of the same type: "If two objects of
// the same type must be locked, the acquisitions can be ordered by
// address." The locks must share a rank. Unlock them individually.
func LockPair(t RankTracker, a, b *OrderedLock) {
	if a == b {
		panic("splock: LockPair with identical locks")
	}
	if a.rank != b.rank {
		panic("splock: LockPair with different ranks")
	}
	if fmt.Sprintf("%p", a) > fmt.Sprintf("%p", b) {
		a, b = b, a
	}
	a.h.checkOrder(t, a)
	a.Checked.Lock(t.(Holder)) //machlock:holds — LockPair returns holding both locks
	b.Checked.Lock(t.(Holder)) //machlock:holds — LockPair returns holding both locks
	t.PushRank(a.rank)
	t.PushRank(b.rank)
}

package splock

import (
	"sync"
	"testing"
	"time"
)

func TestStatLockBasics(t *testing.T) {
	l := NewStat("vm_map")
	if l.Name() != "vm_map" {
		t.Fatalf("name = %q", l.Name())
	}
	l.Lock()
	time.Sleep(time.Millisecond)
	l.Unlock()
	r := l.Report()
	if r.Acquisitions != 1 || r.Contended != 0 {
		t.Fatalf("report = %+v", r)
	}
	if r.MeanHoldNs < float64(500*time.Microsecond) {
		t.Fatalf("hold time not recorded: %+v", r)
	}
}

func TestStatLockTryLock(t *testing.T) {
	l := NewStat("x")
	if !l.TryLock() {
		t.Fatal("try failed on free lock")
	}
	if l.TryLock() {
		t.Fatal("try succeeded on held lock")
	}
	l.Unlock()
	if l.Report().Acquisitions != 1 {
		t.Fatalf("acquisitions = %d", l.Report().Acquisitions)
	}
}

func TestStatLockContentionAccounting(t *testing.T) {
	l := NewStat("hot")
	const workers, iters = 4, 500
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d (exclusion broken)", counter)
	}
	r := l.Report()
	if r.Acquisitions != workers*iters {
		t.Fatalf("acquisitions = %d", r.Acquisitions)
	}
	if r.ContentionRate < 0 || r.ContentionRate > 1 {
		t.Fatalf("contention rate = %f", r.ContentionRate)
	}
	if r.Contended > 0 && r.MaxWaitNs == 0 {
		t.Fatal("contended but no wait time recorded")
	}
}

func TestStatLockSatisfiesMutex(t *testing.T) {
	var m Mutex = NewStat("iface")
	m.Lock()
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock failed")
	}
	m.Unlock()
}

package splock

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"machlock/internal/trace"
)

// arsenalPolicies are the non-default algorithms under test; the default
// TASTTAS path has its own suite in splock_test.go.
var arsenalPolicies = []Policy{TAS, TTAS, Queue, Cohort, Adaptive}

// TestAlgoMutualExclusionStress hammers each algorithm from 2×GOMAXPROCS
// goroutines; run under -race this is the data-race certification for the
// arsenal's handoff edges (grant stores / acquire loads must carry the
// happens-before for the protected counter).
func TestAlgoMutualExclusionStress(t *testing.T) {
	for _, p := range arsenalPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			l := NewWith(Opts{
				Algorithm:  p,
				SpinBudget: 8, // force the park path under contention
				Domains:    2,
			})
			workers := 2 * runtime.GOMAXPROCS(0)
			const perWorker = 2000
			n := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						l.Lock()
						n++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if n != workers*perWorker {
				t.Fatalf("lost updates: n=%d, want %d", n, workers*perWorker)
			}
			if l.Locked() {
				t.Fatal("lock still reads held after all holders released")
			}
		})
	}
}

// TestAlgoTryLock: TryLock on every algorithm must fail against a holder,
// succeed on a free lock, and compose with Unlock.
func TestAlgoTryLock(t *testing.T) {
	for _, p := range arsenalPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			l := NewWith(Opts{Algorithm: p, Domains: 2})
			if !l.TryLock() {
				t.Fatal("TryLock failed on a free lock")
			}
			if l.TryLock() {
				t.Fatal("TryLock succeeded against a holder")
			}
			done := make(chan bool)
			go func() { done <- l.TryLock() }()
			if <-done {
				t.Fatal("TryLock from another goroutine succeeded against a holder")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock failed after release")
			}
			l.Unlock()
		})
	}
}

// TestAlgoTryLockUnderChurn interleaves TryLock with blocking Lock on
// each algorithm: a trylock must never corrupt the queue/global state the
// blocking path depends on.
func TestAlgoTryLockUnderChurn(t *testing.T) {
	for _, p := range []Policy{Queue, Cohort, Adaptive} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			l := NewWith(Opts{Algorithm: p, SpinBudget: 8, Domains: 2})
			n := 0
			var tried, took int
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 1000; i++ {
						l.Lock()
						n++
						l.Unlock()
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					tried++
					if l.TryLock() {
						took++
						n++
						l.Unlock()
					}
				}
			}()
			wg.Wait()
			if n != 4000+took {
				t.Fatalf("lost updates under trylock churn: n=%d, want %d", n, 4000+took)
			}
			_ = tried
		})
	}
}

// TestAlgoStatsAccounting: the arsenal counters must move — handoffs for
// the queue family, parks/unparks for adaptive, local handoffs for the
// cohort under a handoff-friendly schedule.
func TestAlgoStatsAccounting(t *testing.T) {
	t.Run("queue-handoffs", func(t *testing.T) {
		l := NewWith(Opts{Algorithm: Queue})
		contendSlow(l, 4, 50) // holds long enough that waiters queue up
		if l.AlgoStats().Handoffs == 0 {
			t.Fatal("contended queue lock recorded no handoffs")
		}
	})
	t.Run("adaptive-parks", func(t *testing.T) {
		l := NewWith(Opts{Algorithm: Adaptive, SpinBudget: 1})
		contendSlow(l, 4, 50)
		s := l.AlgoStats()
		if s.Parks == 0 {
			t.Fatal("adaptive lock with budget 1 never parked under contention")
		}
		if s.Unparks == 0 {
			t.Fatal("parked waiters were never counted as unparked")
		}
	})
	t.Run("cohort-local", func(t *testing.T) {
		l := NewWith(Opts{Algorithm: Cohort, Domains: 2, HandoffBudget: 16})
		contend(l, 4, 500)
		s := l.AlgoStats()
		if s.Handoffs == 0 {
			t.Skip("scheduler never produced a queued successor; nothing to assert")
		}
		if s.Local == 0 {
			t.Fatal("cohort recorded handoffs but none stayed in-domain")
		}
	})
}

func contend(l *Lock, workers, iters int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

// contendSlow holds the lock across a sleep so waiters reliably exhaust a
// small spin budget and park.
func contendSlow(l *Lock, workers, iters int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				time.Sleep(20 * time.Microsecond)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestAlgoTraceIntegration: a classed queue lock must feed the same
// contention accounting as the default path — contended acquisitions
// counted, waits measured, releases balanced — so Recommend and the
// profile reports work unchanged across the arsenal.
func TestAlgoTraceIntegration(t *testing.T) {
	for _, p := range arsenalPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			trace.Enable()
			defer trace.Disable()
			c := trace.NewClass("splock", "algo."+p.String(), trace.KindSpin)
			l := NewWith(Opts{Algorithm: p, Class: c, Name: "algo." + p.String(), SpinBudget: 4, Domains: 2})
			contendSlow(l, 4, 25)
			prof := c.Snapshot()
			if prof.Acquisitions == 0 {
				t.Fatal("classed arsenal lock recorded no acquisitions")
			}
			if prof.Releases != prof.Acquisitions {
				t.Fatalf("unbalanced accounting: %d acquisitions, %d releases",
					prof.Acquisitions, prof.Releases)
			}
			if prof.Contended == 0 {
				t.Fatalf("4 workers × 25 slow holds recorded no contention (%+v)", prof)
			}
		})
	}
}

// TestAlgoUnlockSanity: foreign/double unlock must panic on the arsenal
// paths exactly as on the default path.
func TestAlgoUnlockSanity(t *testing.T) {
	for _, p := range []Policy{Queue, Cohort, Adaptive} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("unlock of a free lock did not panic")
				}
			}()
			l := NewWith(Opts{Algorithm: p, Domains: 2})
			l.Unlock()
		})
	}
}

// TestNewWithZeroOptsIsDefault: the zero Opts must build a lock
// indistinguishable from the zero value (nil algo, default path).
func TestNewWithZeroOptsIsDefault(t *testing.T) {
	l := NewWith(Opts{})
	if l.Algorithm() != TASTTAS {
		t.Fatalf("zero Opts built %v, want TASTTAS", l.Algorithm())
	}
	l.Lock()
	if !l.Locked() {
		t.Fatal("default lock not held after Lock")
	}
	l.Unlock()
}

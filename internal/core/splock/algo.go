package splock

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/hw"
	"machlock/internal/machsim/simhook"
	"machlock/internal/trace"
)

// This file is the simple-lock algorithm arsenal: the selectable
// acquisition policies behind Opts/NewWith/InitWith. The paper's refined
// TAS/TTAS policy (Appendix A) remains the default and keeps its original
// code path in splock.go — a Lock whose algo field is nil never reaches
// this file. The alternatives exist because the refined policy's ceiling
// is well understood on modern machines:
//
//   - Queue (MCS): under heavy contention every TTAS release triggers a
//     stampede — each spinner's cached copy is invalidated and refetched,
//     and the winners' test-and-sets serialize on the lock line. A queue
//     lock turns that into one enqueue swap per arrival, purely local
//     spinning, and one line transfer per FIFO handoff.
//   - Cohort: on a multi-cell (NUMA) machine the lock word and the data it
//     protects follow the holder; handing the lock across cells moves both
//     over the interconnect. A cohort lock keeps consecutive holders in
//     one cell up to a handoff budget.
//   - Adaptive: in a lightweight-thread environment an unbounded spinner
//     occupies the processor the holder may need to finish its critical
//     section; spin-then-park bounds that to a budget and then blocks.
//
// All algorithms plumb through the same seams as the default path: trace
// class profiles and HoldInfo blame publication, the splock observer
// fan-out, and machsim's simhook yield points (plus two queue-specific
// notes, SpEnqueued and SpHandoff, that let the harness check FIFO
// handoff).

// Opts configures simple-lock construction, mirroring cxlock.Options.
// The zero value is a default lock: TASTTAS policy, untraced, anonymous.
type Opts struct {
	// Algorithm selects the acquisition policy. The zero value is
	// TASTTAS, the paper's refined default.
	Algorithm Policy
	// Class registers the lock with the observability layer (equivalent
	// to SetClass).
	Class *trace.Class
	// Name is an optional human label, surfaced by Name().
	Name string
	// SpinBudget is the number of spin iterations an Adaptive waiter
	// performs before parking; 0 means DefaultSpinBudget. Ignored by
	// other algorithms.
	SpinBudget int
	// Domains is the number of cohort domains (processor cells) for
	// Cohort; 0 means DefaultDomains. Ignored by other algorithms.
	Domains int
	// HandoffBudget bounds consecutive same-domain handoffs for Cohort
	// before the global lock is released to other cells; 0 means
	// DefaultHandoffBudget. Ignored by other algorithms.
	HandoffBudget int
	// Machine selects the simulated machine for NewSimWith; ignored by
	// NewWith/InitWith (production locks run on host atomics).
	Machine *hw.Machine
}

// Tuning defaults for the arsenal; chosen for the simulation's scale, not
// tuned for any particular host.
const (
	// DefaultSpinBudget is how long an Adaptive waiter spins before
	// parking. Roughly: long enough to cover a short critical section
	// without a context switch, short enough that a preempted holder
	// does not burn a processor.
	DefaultSpinBudget = 128
	// DefaultDomains is the cohort domain count when Opts.Domains is 0
	// and no machine topology is given.
	DefaultDomains = 2
	// DefaultHandoffBudget bounds consecutive intra-domain cohort
	// handoffs, the fairness/locality trade dial.
	DefaultHandoffBudget = 16
)

// NewWith creates a production simple lock from options. A zero Opts is
// exactly the zero-value Lock. This is the construction path the machlock
// facade uses; the positional NewSim constructor is deprecated.
func NewWith(o Opts) *Lock {
	l := new(Lock)
	l.InitWith(o)
	return l
}

// InitWith initializes an embedded Lock from options, for locks living
// inside larger structures (zones, vm objects). Must precede concurrent
// use; reinitializing a held lock is a protocol violation.
func (l *Lock) InitWith(o Opts) {
	l.class = o.Class
	l.name = o.Name
	switch o.Algorithm {
	case TASTTAS:
		l.algo = nil
	case TAS, TTAS, TCLEAR, Queue, Cohort, Adaptive:
		l.algo = newAlgoState(o)
	default:
		panic(fmt.Sprintf("splock: unknown algorithm %v", o.Algorithm))
	}
}

// AlgoStats is a snapshot of a non-default algorithm's accounting; all
// zeros for the default path (which has no arsenal state to count).
type AlgoStats struct {
	Handoffs int64 // direct holder-to-successor handoffs (queue, cohort, adaptive)
	Local    int64 // cohort handoffs that stayed in the holder's domain
	Parks    int64 // adaptive waiters that exhausted their spin budget and parked
	Unparks  int64 // parked waiters woken by a releaser
}

// AlgoStats returns the lock's arsenal accounting.
func (l *Lock) AlgoStats() AlgoStats {
	a := l.algo
	if a == nil {
		return AlgoStats{}
	}
	return AlgoStats{
		Handoffs: a.handoffs.Load(),
		Local:    a.localHandoffs.Load(),
		Parks:    a.parks.Load(),
		Unparks:  a.unparks.Load(),
	}
}

// qnode is one waiter's queue entry. Waiters spin (or park) on their own
// node's grant flag, so contended waiting stays out of the lock word's
// cache line. Nodes are pooled; reset clears any state a previous
// acquisition could have left behind (including a stale park token).
type qnode struct {
	next  atomic.Pointer[qnode]
	wait  atomic.Int32 // qWaiting until granted; grant value says what was passed
	state atomic.Int32 // adaptive park handshake: qSpinning/qParked/qGranted
	ch    chan struct{}
}

// wait-flag values. A grant either hands the holder's rights over
// directly (queue, adaptive, and intra-domain cohort handoffs) or only
// promotes the waiter to local head, still needing the global lock
// (cohort cross-domain release).
const (
	qGrantedDirect int32 = iota // lock ownership passed with the grant
	qWaiting                    // spinning/parked on this node
	qGrantedLocal               // cohort: local head now, must take the global lock
)

// park-handshake values.
const (
	qSpinning int32 = iota // waiter has not parked
	qParked                // waiter parked (or committed to parking) on ch
	qGranted               // releaser granted before the waiter parked
)

var qnodePool = sync.Pool{New: func() any {
	return &qnode{ch: make(chan struct{}, 1)}
}}

func getQnode() *qnode {
	n := qnodePool.Get().(*qnode)
	n.next.Store(nil)
	n.wait.Store(qWaiting)
	n.state.Store(qSpinning)
	select { // drain a park token a sim-degraded waiter never consumed
	case <-n.ch:
	default:
	}
	return n
}

// algoState is the per-lock arsenal state, allocated only for non-default
// algorithms so the default Lock stays one word of hot state.
type algoState struct {
	kind Policy

	// tail is the queue-lock tail pointer (Queue and Adaptive); the
	// holder's own node is remembered in cur for its release.
	tail atomic.Pointer[qnode]
	cur  *qnode // protected by the lock itself (holder-only access)

	spinBudget int32 // adaptive spin-before-park budget

	// Cohort state: a global TTAS word plus one queue per domain. Waiters
	// are assigned a domain round-robin — goroutines have no processor
	// identity, so arrival order stands in for topology; under machsim the
	// token scheduler makes the assignment deterministic, and the SimLock
	// variant uses real simulated-CPU cells instead.
	global        int32
	domains       []cohortDomain
	rr            atomic.Uint32
	handoffBudget int32
	handoffs32    int32 // consecutive local handoffs; holder-only access
	curDomain     int32 // holder's domain; -1 when acquired via TryLock

	handoffs      atomic.Int64
	localHandoffs atomic.Int64
	parks         atomic.Int64
	unparks       atomic.Int64
}

// cohortDomain is one cell's local queue, padded so two domains' tails do
// not share a cache line (false sharing between cells would defeat the
// design being modeled).
type cohortDomain struct {
	tail atomic.Pointer[qnode]
	cur  *qnode // local head's node; protected by local-queue headship
	_    [40]byte
}

func newAlgoState(o Opts) *algoState {
	a := &algoState{kind: o.Algorithm}
	switch o.Algorithm {
	case Adaptive:
		a.spinBudget = int32(o.SpinBudget)
		if a.spinBudget <= 0 {
			a.spinBudget = DefaultSpinBudget
		}
	case Cohort:
		nd := o.Domains
		if nd <= 0 {
			if o.Machine != nil {
				nd = o.Machine.NCells()
			} else {
				nd = DefaultDomains
			}
		}
		a.domains = make([]cohortDomain, nd)
		a.handoffBudget = int32(o.HandoffBudget)
		if a.handoffBudget <= 0 {
			a.handoffBudget = DefaultHandoffBudget
		}
		a.curDomain = -1
	}
	return a
}

// spinYield is one failed spin iteration: under machsim a voluntary
// yield, on the host a Gosched so the holder can run.
func spinYield(l *Lock) {
	if simhook.Enabled() {
		simhook.Yield(simhook.SpSpin, l)
	} else {
		runtime.Gosched()
	}
}

// tracedStart captures the wait-timing state the trace layer needs before
// a contended wait: the wall start and the holder pinned for blame.
func (l *Lock) tracedStart() (start time.Time, blamed *trace.HoldInfo, traced bool) {
	if !l.class.On() {
		return time.Time{}, nil, false
	}
	blamed = l.hold.Load()
	l.class.Waiting()
	return time.Now(), blamed, true
}

// acquired finishes an acquisition on every algorithm path: it mirrors
// the held state into l.state (for Locked and the unlock sanity check),
// stamps/publishes trace state, and fans out to observers. contended
// reports whether the acquirer waited; traced whether tracedStart ran.
func (l *Lock) acquired(contended, traced bool, start time.Time, blamed *trace.HoldInfo) {
	atomic.StoreInt32(&l.state, 1)
	if l.class.On() {
		if traced {
			waitNs := time.Since(start).Nanoseconds()
			l.acquiredAt = time.Now().UnixNano()
			l.publishHold()
			l.class.DoneWaiting(waitNs)
			l.class.BlameWait(blamed, waitNs)
			l.class.Acquired(true, waitNs)
			l.class.WaitSampled(1, waitNs)
		} else {
			l.acquiredAt = time.Now().UnixNano()
			l.publishHold()
			l.class.Acquired(false, 0)
		}
	}
	simhook.Note(simhook.SpAcquired, l, 0)
	if contended {
		obDoneWaiting(l)
	}
	obAcquired(l, contended)
}

// releasing runs the holder's trace bookkeeping before the lock changes
// hands (by handoff or by becoming free): retire the hold stamp, record
// the hold time. The l.state mirror is cleared only on a true release,
// not on a handoff — a handed-off lock is never observably unlocked.
func (l *Lock) releasing() {
	if atomic.LoadInt32(&l.state) != 1 {
		panic("splock: unlock of unlocked simple lock")
	}
	if l.class != nil {
		holdNs := int64(-1)
		var h *trace.HoldInfo
		if at := l.acquiredAt; at != 0 {
			l.acquiredAt = 0
			holdNs = time.Now().UnixNano() - at
			if l.hold.Load() != nil {
				h = l.hold.Swap(nil)
			}
		}
		l.class.Released(holdNs)
		if holdNs >= 0 {
			l.class.EndHold(h, holdNs)
		}
	}
	obReleased(l)
}

// ---- dispatch ----

func (a *algoState) lock(l *Lock) {
	switch a.kind {
	case TAS, TCLEAR:
		a.lockTAS(l)
	case TTAS:
		a.lockTTAS(l)
	case Queue, Adaptive:
		a.lockQueue(l)
	case Cohort:
		a.lockCohort(l)
	}
}

func (a *algoState) unlock(l *Lock) {
	switch a.kind {
	case TAS, TCLEAR, TTAS:
		l.releasing()
		if atomic.SwapInt32(&l.state, 0) != 1 {
			panic("splock: unlock of unlocked simple lock")
		}
		simhook.Note(simhook.SpReleased, l, 0)
	case Queue, Adaptive:
		a.unlockQueue(l)
	case Cohort:
		a.unlockCohort(l)
	}
}

func (a *algoState) trylock(l *Lock) bool {
	switch a.kind {
	case TAS, TCLEAR, TTAS:
		if !atomic.CompareAndSwapInt32(&l.state, 0, 1) {
			return false
		}
		l.acquired(false, false, time.Time{}, nil)
		return true
	case Queue, Adaptive:
		return a.trylockQueue(l)
	case Cohort:
		return a.trylockCohort(l)
	}
	return false
}

// ---- plain spin policies over the production lock word ----

// lockTAS spins directly on the atomic swap — every iteration an RMW.
// (TCLEAR shares this path: Go atomics offer no distinct encoding worth
// modeling; the coherence-faithful inverted encoding lives in SimLock.)
func (a *algoState) lockTAS(l *Lock) {
	if atomic.CompareAndSwapInt32(&l.state, 0, 1) {
		l.acquired(false, false, time.Time{}, nil)
		return
	}
	start, blamed, traced := l.tracedStart()
	obWaiting(l)
	for {
		if atomic.CompareAndSwapInt32(&l.state, 0, 1) {
			l.acquired(true, traced, start, blamed)
			return
		}
		spinYield(l)
	}
}

// lockTTAS tests before every set attempt, including the first — the
// pure policy, without the paper's one-optimistic-TAS refinement.
func (a *algoState) lockTTAS(l *Lock) {
	if atomic.LoadInt32(&l.state) == 0 &&
		atomic.CompareAndSwapInt32(&l.state, 0, 1) {
		l.acquired(false, false, time.Time{}, nil)
		return
	}
	start, blamed, traced := l.tracedStart()
	obWaiting(l)
	for {
		if atomic.LoadInt32(&l.state) == 0 &&
			atomic.CompareAndSwapInt32(&l.state, 0, 1) {
			l.acquired(true, traced, start, blamed)
			return
		}
		spinYield(l)
	}
}

// Note: for TAS/TTAS/TCLEAR the lock word doubles as the mirror, so
// acquired()'s StoreInt32(1) is redundant but correct (we already own it).

// ---- queue (MCS) and adaptive spin-then-park ----

// lockQueue is the MCS acquisition: swap self onto the tail, then spin
// (Queue) or spin-then-park (Adaptive) on the own node's grant flag.
func (a *algoState) lockQueue(l *Lock) {
	n := getQnode()
	prev := a.tail.Swap(n)
	simhook.Note(simhook.SpEnqueued, l, 0)
	if prev == nil {
		// Queue was empty: we are the holder with no predecessor.
		a.cur = n
		l.acquired(false, false, time.Time{}, nil)
		return
	}
	start, blamed, traced := l.tracedStart()
	obWaiting(l)
	prev.next.Store(n)
	a.waitOnNode(l, n)
	a.cur = n
	l.acquired(true, traced, start, blamed)
}

// waitOnNode spins on n's grant flag; Adaptive waiters park after their
// spin budget. Returns once the predecessor has granted.
func (a *algoState) waitOnNode(l *Lock, n *qnode) {
	budget := a.spinBudget // 0 for Queue: spin forever
	for i := int32(0); n.wait.Load() == qWaiting; i++ {
		if a.kind == Adaptive && i >= budget {
			a.park(l, n)
			return
		}
		spinYield(l)
	}
}

// park blocks the waiter until the releaser's grant. The handshake is a
// CAS on n.state: if the waiter wins (qSpinning→qParked) the releaser
// will send the wakeup token; if the releaser already granted
// (state=qGranted) the waiter never blocks. Under machsim, parking
// degrades to a dedicated yield loop — blocking on a host channel would
// freeze the token scheduler — at the SpPark point, so the harness still
// explores park-window schedules.
func (a *algoState) park(l *Lock, n *qnode) {
	if !n.state.CompareAndSwap(qSpinning, qParked) {
		// Granted between the budget check and the park commit.
		for n.wait.Load() == qWaiting {
			spinYield(l)
		}
		return
	}
	a.parks.Add(1)
	if simhook.Enabled() {
		for n.wait.Load() == qWaiting {
			simhook.Yield(simhook.SpPark, l)
		}
		return
	}
	<-n.ch
	for n.wait.Load() == qWaiting {
		// The token is sent after the grant store, so this spin should
		// not be needed; it guards the protocol, not the fast path.
		runtime.Gosched()
	}
}

// grant hands the lock (value v) to waiter n, waking it if it parked.
func (a *algoState) grant(n *qnode, v int32) {
	n.wait.Store(v)
	if a.kind == Adaptive && !n.state.CompareAndSwap(qSpinning, qGranted) {
		// The waiter committed to parking; under machsim it yield-loops
		// (no receiver — the stale token is drained on node reuse).
		a.unparks.Add(1)
		if !simhook.Enabled() {
			n.ch <- struct{}{}
		}
	}
}

// unlockQueue is the MCS release: with no visible successor, swing the
// tail back to nil and the lock is free; otherwise hand off directly to
// the next node (FIFO).
func (a *algoState) unlockQueue(l *Lock) {
	n := a.cur
	if n == nil {
		panic("splock: unlock of unlocked simple lock")
	}
	l.releasing()
	a.cur = nil
	if n.next.Load() == nil {
		// Clear the mirror before the tail CAS: on success the lock is
		// free from the CAS instant and the next fresh acquirer sets the
		// mirror itself — storing after would race with it.
		atomic.StoreInt32(&l.state, 0)
		if a.tail.CompareAndSwap(n, nil) {
			simhook.Note(simhook.SpReleased, l, 0)
			qnodePool.Put(n)
			return
		}
		// A new waiter swapped the tail but has not linked yet; the lock
		// is spoken for — restore the mirror and wait for the link.
		atomic.StoreInt32(&l.state, 1)
		for n.next.Load() == nil {
			spinYield(l)
		}
	}
	next := n.next.Load()
	a.handoffs.Add(1)
	simhook.Note(simhook.SpHandoff, l, 0)
	a.grant(next, qGrantedDirect)
	qnodePool.Put(n)
}

// trylockQueue succeeds only when the queue is empty: one CAS of the
// tail from nil to our node.
func (a *algoState) trylockQueue(l *Lock) bool {
	n := getQnode()
	if !a.tail.CompareAndSwap(nil, n) {
		qnodePool.Put(n)
		return false
	}
	simhook.Note(simhook.SpEnqueued, l, 0)
	a.cur = n
	l.acquired(false, false, time.Time{}, nil)
	return true
}

// ---- cohort ----

// lockCohort acquires the local (domain) queue, then the global lock —
// unless a same-domain predecessor handed the global over with the local
// headship.
func (a *algoState) lockCohort(l *Lock) {
	di := int(a.rr.Add(1)-1) % len(a.domains)
	d := &a.domains[di]
	n := getQnode()
	prev := d.tail.Swap(n)
	var start time.Time
	var blamed *trace.HoldInfo
	traced := false
	contended := prev != nil
	if contended {
		start, blamed, traced = l.tracedStart()
		obWaiting(l)
		prev.next.Store(n)
		a.waitOnNode(l, n)
	}
	d.cur = n
	if !contended || n.wait.Load() == qGrantedLocal {
		// Local head without the global lock: TTAS on the global word,
		// contending only with other domains' heads (and TryLock).
		for {
			if atomic.LoadInt32(&a.global) == 0 &&
				atomic.CompareAndSwapInt32(&a.global, 0, 1) {
				break
			}
			if !contended && !traced {
				start, blamed, traced = l.tracedStart()
				obWaiting(l)
				contended = true
			}
			spinYield(l)
		}
	}
	a.curDomain = int32(di)
	l.acquired(contended, traced, start, blamed)
}

// unlockCohort prefers a same-domain successor while the handoff budget
// lasts (global lock passed along with local headship); otherwise it
// releases the global lock and promotes the successor to local head only.
func (a *algoState) unlockCohort(l *Lock) {
	l.releasing()
	di := a.curDomain
	a.curDomain = -1
	if di < 0 {
		// Acquired via TryLock: no local queue membership.
		atomic.StoreInt32(&l.state, 0)
		atomic.StoreInt32(&a.global, 0)
		simhook.Note(simhook.SpReleased, l, 0)
		return
	}
	d := &a.domains[di]
	n := d.cur
	d.cur = nil
	next := n.next.Load()
	if next == nil && !d.tail.CompareAndSwap(n, nil) {
		for next == nil {
			spinYield(l)
			next = n.next.Load()
		}
	}
	if next != nil && a.handoffs32 < a.handoffBudget {
		// Pass global + local to the same-domain successor.
		a.handoffs32++
		a.handoffs.Add(1)
		a.localHandoffs.Add(1)
		simhook.Note(simhook.SpHandoff, l, 0)
		a.grant(next, qGrantedDirect)
		qnodePool.Put(n)
		return
	}
	// Budget exhausted or domain empty: free the global lock, then (if a
	// successor exists) promote it to local head without the global.
	a.handoffs32 = 0
	atomic.StoreInt32(&l.state, 0)
	atomic.StoreInt32(&a.global, 0)
	simhook.Note(simhook.SpReleased, l, 0)
	if next != nil {
		a.handoffs.Add(1)
		a.grant(next, qGrantedLocal)
	}
	qnodePool.Put(n)
}

// trylockCohort makes a single attempt on the global word; a holder that
// entered this way has no local queue membership, so its release frees
// the global directly.
func (a *algoState) trylockCohort(l *Lock) bool {
	if !atomic.CompareAndSwapInt32(&a.global, 0, 1) {
		return false
	}
	a.curDomain = -1
	l.acquired(false, false, time.Time{}, nil)
	return true
}

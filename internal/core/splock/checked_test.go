package splock

import (
	"strings"
	"sync"
	"testing"

	"machlock/internal/sched"
)

func TestCheckedBasic(t *testing.T) {
	l := NewChecked("task")
	th := sched.New("t1")
	l.Lock(th)
	if got := l.HolderName(); got != "t1" {
		t.Fatalf("holder = %q, want t1", got)
	}
	if th.SpinLocksHeld() != 1 {
		t.Fatalf("spin locks held = %d, want 1", th.SpinLocksHeld())
	}
	l.Unlock(th)
	if l.HolderName() != "" {
		t.Fatal("holder not cleared after unlock")
	}
	if th.SpinLocksHeld() != 0 {
		t.Fatal("spin count not decremented")
	}
	if l.Acquisitions() != 1 {
		t.Fatalf("acquisitions = %d, want 1", l.Acquisitions())
	}
}

func TestCheckedSelfDeadlockPanics(t *testing.T) {
	l := NewChecked("x")
	th := sched.New("t")
	l.Lock(th)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("recursive simple_lock did not panic")
		}
		if !strings.Contains(r.(string), "self-deadlock") {
			t.Fatalf("panic = %v", r)
		}
		l.Unlock(th)
	}()
	l.Lock(th)
}

func TestCheckedUnlockByNonHolderPanics(t *testing.T) {
	l := NewChecked("x")
	a, b := sched.New("a"), sched.New("b")
	l.Lock(a)
	defer func() {
		if recover() == nil {
			t.Fatal("unlock by non-holder did not panic")
		}
		l.Unlock(a)
	}()
	l.Unlock(b)
}

func TestCheckedNilHolderPanics(t *testing.T) {
	l := NewChecked("x")
	defer func() {
		if recover() == nil {
			t.Fatal("nil holder did not panic")
		}
	}()
	l.Lock(nil)
}

func TestCheckedTryLock(t *testing.T) {
	l := NewChecked("x")
	a, b := sched.New("a"), sched.New("b")
	if !l.TryLock(a) {
		t.Fatal("TryLock failed on free lock")
	}
	if l.TryLock(b) {
		t.Fatal("TryLock succeeded on held lock")
	}
	l.Unlock(a)
}

func TestCheckedBlocksWhileHeldPanicsViaSched(t *testing.T) {
	// The paper's fatal rule: may not block holding a simple lock.
	l := NewChecked("x")
	th := sched.New("t")
	l.Lock(th)
	defer func() {
		if recover() == nil {
			t.Fatal("thread_block while holding checked lock did not panic")
		}
		l.Unlock(th)
	}()
	sched.AssertWait(th, new(int))
	sched.ThreadBlock(th)
}

func TestCheckedContentionCounter(t *testing.T) {
	l := NewChecked("x")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := sched.New("w")
			for j := 0; j < 200; j++ {
				l.Lock(th)
				l.Unlock(th)
			}
		}(i)
	}
	wg.Wait()
	if l.Acquisitions() != 800 {
		t.Fatalf("acquisitions = %d, want 800", l.Acquisitions())
	}
}

func TestHierarchyDetectsViolation(t *testing.T) {
	h := NewHierarchy(false)
	mapLock := h.NewOrdered("vm_map", 10)
	objLock := h.NewOrdered("vm_object", 20)
	th := sched.New("t")

	// Correct order: map before object.
	mapLock.Lock(th)
	objLock.Lock(th)
	objLock.Unlock(th)
	mapLock.Unlock(th)
	if h.Violations() != 0 {
		t.Fatalf("violations after correct order = %d", h.Violations())
	}

	// Wrong order: object before map.
	objLock.Lock(th)
	mapLock.Lock(th)
	if h.Violations() != 1 {
		t.Fatalf("violations after wrong order = %d, want 1", h.Violations())
	}
	if !strings.Contains(h.LastViolation(), "vm_map") {
		t.Fatalf("violation report %q missing lock name", h.LastViolation())
	}
	mapLock.Unlock(th)
	objLock.Unlock(th)
}

func TestHierarchyFatalPanics(t *testing.T) {
	h := NewHierarchy(true)
	a := h.NewOrdered("a", 2)
	b := h.NewOrdered("b", 1)
	th := sched.New("t")
	a.Lock(th)
	defer func() {
		if recover() == nil {
			t.Fatal("fatal hierarchy violation did not panic")
		}
		a.Unlock(th)
	}()
	b.Lock(th)
}

func TestHierarchyTryLockNeverViolates(t *testing.T) {
	// Single attempts against the order are the legitimate backout
	// protocol and must not count as violations.
	h := NewHierarchy(false)
	a := h.NewOrdered("a", 2)
	b := h.NewOrdered("b", 1)
	th := sched.New("t")
	a.Lock(th)
	if !b.TryLock(th) {
		t.Fatal("TryLock failed on free lock")
	}
	if h.Violations() != 0 {
		t.Fatalf("TryLock counted as violation: %d", h.Violations())
	}
	b.Unlock(th)
	a.Unlock(th)
}

func TestLockPairAddressOrder(t *testing.T) {
	h := NewHierarchy(true)
	a := h.NewOrdered("task-a", 5)
	b := h.NewOrdered("task-b", 5)
	th1, th2 := sched.New("t1"), sched.New("t2")

	// Concurrent LockPair in both argument orders must not deadlock.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(th *sched.Thread, first, second *OrderedLock) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				LockPair(th, first, second)
				second.Unlock(th)
				first.Unlock(th)
			}
		}(map[int]*sched.Thread{0: th1, 1: th2}[i],
			map[int]*OrderedLock{0: a, 1: b}[i],
			map[int]*OrderedLock{0: b, 1: a}[i])
	}
	wg.Wait()
}

func TestLockPairValidation(t *testing.T) {
	h := NewHierarchy(false)
	a := h.NewOrdered("a", 1)
	c := h.NewOrdered("c", 2)
	th := sched.New("t")
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"identical", func() { LockPair(th, a, a) }},
		{"ranks", func() { LockPair(th, a, c) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LockPair %s did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// Package splock implements Mach's simple locks: spinning (non-blocking)
// mutual exclusion locks, the machine-dependent foundation on which every
// other locking protocol in the kernel is built (paper Section 4 and
// Appendix A).
//
// Three implementations are provided:
//
//   - Lock: the production lock over Go's native atomics. Its acquisition
//     sequence is the paper's refined policy — one test-and-set attempt
//     first, falling back to test-and-test-and-set spinning — because "most
//     locks in a well designed system are acquired on the first attempt".
//   - SimLock: the instrumented lock over a simulated hw.Cell, available in
//     all three acquisition policies (TAS, TTAS, TASTTAS) so experiment E1
//     can count the interconnect traffic each generates.
//   - Noop: the uniprocessor variant. Mach declares simple locks through a
//     macro precisely so they can be compiled out of uniprocessor kernels;
//     Noop is that compile-out, usable anywhere a Mutex is.
//
// A Checked wrapper adds the debugging discipline the paper alludes to
// ("a structure to allow the simple addition of debugging and statistics
// information"): holder tracking, double-acquire/release detection, and
// integration with sched's you-may-not-block-holding-a-spin-lock rule.
//
// Simple locks may not be held across blocking operations or context
// switches; the paper calls violations of this restriction fatal. The
// enforcement lives in sched.ThreadBlock and fires for Checked locks.
package splock

import (
	"runtime"
	"sync/atomic"
	"time"

	"machlock/internal/hw"
	"machlock/internal/machsim/simhook"
	"machlock/internal/trace"
)

// Mutex is the machine-independent simple lock interface (Appendix A):
// Lock spins until acquired, Unlock releases, TryLock makes a single
// attempt. The zero value of every implementation is an unlocked lock,
// mirroring simple_lock_init.
type Mutex interface {
	Lock()
	Unlock()
	TryLock() bool
}

// Lock is the production simple lock: a word-sized spin lock over native
// atomics. The zero value is unlocked. Spinners yield the processor
// between test iterations so the simulation remains live on few host cores;
// this stands in for the hardware backoff a real kernel spin performs.
//
// A lock may optionally be registered with the observability layer via
// SetClass; an unclassed lock (the zero value) pays only a nil check per
// operation, and a classed lock with tracing disabled pays one atomic
// load — the "structure to allow the simple addition of debugging and
// statistics information" of Appendix A.1, at its designed cost.
type Lock struct {
	state int32

	// class is the observability registration; nil means untraced.
	// Immutable after SetClass, which must precede concurrent use.
	class *trace.Class
	// acquiredAt is the ns timestamp of the current traced acquisition;
	// protected by the lock itself (written after acquire, consumed at
	// release).
	acquiredAt int64
	// hold is the sampled holder identity waiters blame their spin time
	// on; published (1-in-N) after a traced acquisition, cleared at
	// release. See trace.HoldInfo.
	hold atomic.Pointer[trace.HoldInfo]

	// algo selects a non-default acquisition algorithm (queue, cohort,
	// adaptive, or one of the plain spin policies); nil — the zero value
	// and what NewWith leaves for TASTTAS — keeps the refined-policy
	// fast path above untouched. Immutable after InitWith, which must
	// precede concurrent use.
	algo *algoState
	// name is an optional human label carried from Opts.Name.
	name string
}

var _ Mutex = (*Lock)(nil)

// SetClass registers the lock with the observability layer. Call before
// the lock is in concurrent use (typically right after construction).
func (l *Lock) SetClass(c *trace.Class) { l.class = c }

// Name returns the label given at construction; empty for anonymous locks.
func (l *Lock) Name() string { return l.name }

// Algorithm returns the lock's acquisition policy.
func (l *Lock) Algorithm() Policy {
	if l.algo == nil {
		return TASTTAS
	}
	return l.algo.kind
}

// Lock acquires the lock, spinning until it is available (simple_lock).
// The first attempt is an unconditional test-and-set; only if that fails
// does the acquirer fall back to test-and-test-and-set spinning.
func (l *Lock) Lock() {
	simhook.Yield(simhook.SpLock, l)
	if l.algo != nil {
		l.algo.lock(l)
		return
	}
	if l.class.On() {
		l.lockTraced()
		return
	}
	if atomic.CompareAndSwapInt32(&l.state, 0, 1) {
		simhook.Note(simhook.SpAcquired, l, 0)
		obAcquired(l, false)
		return
	}
	obWaiting(l)
	for {
		if atomic.LoadInt32(&l.state) == 0 &&
			atomic.CompareAndSwapInt32(&l.state, 0, 1) {
			simhook.Note(simhook.SpAcquired, l, 0)
			obDoneWaiting(l)
			obAcquired(l, true)
			return
		}
		if simhook.Enabled() {
			// Under machsim a failed spin iteration is a voluntary yield:
			// the harness switches to another virtual thread (eventually
			// the holder) instead of burning a host-scheduler pass.
			simhook.Yield(simhook.SpSpin, l)
		} else {
			runtime.Gosched()
		}
	}
}

// lockTraced is the acquisition path with tracing on: it times contended
// waits and stamps the acquisition for the hold-time sample at unlock.
func (l *Lock) lockTraced() {
	if atomic.CompareAndSwapInt32(&l.state, 0, 1) {
		l.acquiredAt = time.Now().UnixNano()
		l.publishHold()
		l.class.Acquired(false, 0)
		simhook.Note(simhook.SpAcquired, l, 0)
		obAcquired(l, false)
		return
	}
	start := time.Now()
	// Blame is pinned to the holder visible when the spin began; by the
	// time we win the lock the blame target has (by definition) released.
	blamed := l.hold.Load()
	l.class.Waiting()
	obWaiting(l)
	for {
		if atomic.LoadInt32(&l.state) == 0 &&
			atomic.CompareAndSwapInt32(&l.state, 0, 1) {
			waitNs := time.Since(start).Nanoseconds()
			l.acquiredAt = time.Now().UnixNano()
			l.publishHold()
			l.class.DoneWaiting(waitNs)
			l.class.BlameWait(blamed, waitNs)
			l.class.Acquired(true, waitNs)
			l.class.WaitSampled(1, waitNs)
			simhook.Note(simhook.SpAcquired, l, 0)
			obDoneWaiting(l)
			obAcquired(l, true)
			return
		}
		if simhook.Enabled() {
			simhook.Yield(simhook.SpSpin, l)
		} else {
			runtime.Gosched()
		}
	}
}

// publishHold samples this acquisition for holder blame (1-in-N captures
// the acquiring stack); called by the new holder right after the
// test-and-set, so the store is ordered before any waiter's blame load
// could matter. Spin locks have no thread identity, so the published tid
// is 0.
func (l *Lock) publishHold() {
	if h := l.class.SampleHold(1, 0); h != nil {
		h.Since = time.Now().UnixNano()
		l.hold.Store(h)
	}
}

// Unlock releases the lock (simple_unlock). Unlocking an unlocked lock
// panics: it always indicates a protocol error.
func (l *Lock) Unlock() {
	// The yield happens while the lock is still held: machsim explores
	// schedules where a holder is preempted inside its critical section,
	// which is exactly when waiters pile up on the interlock.
	simhook.Yield(simhook.SpUnlock, l)
	if l.algo != nil {
		l.algo.unlock(l)
		return
	}
	if l.class != nil {
		// Consume the acquisition stamp unconditionally so a toggle of
		// tracing mid-hold cannot leave a stale timestamp behind. A
		// published hold implies a traced acquisition, which always
		// stamps, so the hold retire nests under the stamp check and the
		// untraced unlock pays nothing for it. Load-then-swap: the common
		// unlock (no hold published — tracing off or unsampled) pays one
		// plain load, not an atomic RMW. Not racy: only the current
		// holder publishes, and we are the holder.
		holdNs := int64(-1)
		var h *trace.HoldInfo
		if at := l.acquiredAt; at != 0 {
			l.acquiredAt = 0
			holdNs = time.Now().UnixNano() - at
			if l.hold.Load() != nil {
				h = l.hold.Swap(nil)
			}
		}
		if atomic.SwapInt32(&l.state, 0) != 1 {
			panic("splock: unlock of unlocked simple lock")
		}
		l.class.Released(holdNs)
		if holdNs >= 0 {
			l.class.EndHold(h, holdNs)
		}
		simhook.Note(simhook.SpReleased, l, 0)
		obReleased(l)
		return
	}
	if atomic.SwapInt32(&l.state, 0) != 1 {
		panic("splock: unlock of unlocked simple lock")
	}
	simhook.Note(simhook.SpReleased, l, 0)
	obReleased(l)
}

// TryLock makes a single attempt to acquire the lock (simple_lock_try),
// returning true on success. The paper notes it is "useful for attempting
// to acquire a lock in situations where the unconditional acquisition of
// the lock could cause deadlock" — the backout protocols of Section 5.
func (l *Lock) TryLock() bool {
	simhook.Yield(simhook.SpTry, l)
	if simhook.ForceFail(simhook.SpTry, l) {
		return false
	}
	if l.algo != nil {
		return l.algo.trylock(l)
	}
	if !atomic.CompareAndSwapInt32(&l.state, 0, 1) {
		return false
	}
	simhook.Note(simhook.SpAcquired, l, 0)
	if l.class.On() {
		l.acquiredAt = time.Now().UnixNano()
		l.publishHold()
		l.class.Acquired(false, 0)
	}
	obAcquired(l, false)
	return true
}

// Locked reports whether the lock is currently held. Useful only for
// assertions; the answer may be stale by the time it is returned.
func (l *Lock) Locked() bool {
	return atomic.LoadInt32(&l.state) != 0
}

// Noop is the uniprocessor simple lock: all operations are no-ops, the
// moral equivalent of Mach defining simple locks out of uniprocessor
// kernels via decl_simple_lock_data. Use it (through the Mutex interface)
// to measure the cost the declaration-macro design avoids (experiment E12).
type Noop struct{}

var _ Mutex = Noop{}

// Lock is a no-op.
func (Noop) Lock() {}

// Unlock is a no-op.
func (Noop) Unlock() {}

// TryLock always succeeds.
func (Noop) TryLock() bool { return true }

// Policy selects a spin-lock acquisition algorithm, for both the
// production Lock (via NewWith/InitWith) and the simulated SimLock.
// The zero value is TASTTAS, the paper's refined policy and the default
// every zero-value Lock runs.
type Policy int

const (
	// TASTTAS makes one test-and-set attempt first and falls back to
	// TTAS spinning only on failure: best of both when most locks are
	// acquired on the first attempt, as the paper assumes of a well
	// designed system. This is the default policy (the zero value).
	TASTTAS Policy = iota
	// TAS spins directly on the atomic test-and-set instruction. Every
	// spin iteration is a read-modify-write that steals exclusive
	// ownership of the lock's cache line, so contended spinning floods
	// the interconnect.
	TAS
	// TTAS (test-and-test-and-set) spins on an ordinary load — a cache
	// hit once the line is filled Shared — and attempts the atomic
	// operation only when the lock is observed free.
	TTAS
	// TCLEAR is the test-and-clear encoding the paper attributes to
	// Precision Architecture ("swap 0 and 1 for a test and clear lock"):
	// the unlocked state is 1, acquisition swaps in 0 and succeeds on
	// reading back nonzero, release stores 1. Coherence behaviour is
	// identical to TAS — "the basic concept is that of an atomic
	// operation that sets the lock to a known state and returns its old
	// value." The production Lock treats it as TAS (Go atomics have no
	// test-and-clear encoding worth distinguishing); SimLock models the
	// inverted encoding faithfully.
	TCLEAR
	// Queue is an MCS-style queue lock: waiters append a per-waiter
	// qnode to a tail pointer with one atomic swap and then spin on a
	// flag in their own qnode. Handoff is explicit and FIFO; under
	// contention each waiter's spinning stays in its own cache line, so
	// the interconnect sees one transfer per handoff instead of a
	// stampede per release (Mellor-Crummey & Scott).
	Queue
	// Cohort is a topology-aware composite: one global lock plus one
	// local queue per processor cell (NUMA domain). A releasing holder
	// prefers a waiter from its own cell — passing the global lock along
	// with the local one, up to a handoff budget that bounds unfairness —
	// so the lock word and the data it protects migrate between cells
	// rarely (lock cohorting, Dice/Marathe/Shavit; Fissile locks).
	Cohort
	// Adaptive is a queue lock whose waiters spin only for a bounded
	// budget before parking (blocking) until handoff: spin-then-park,
	// the waiting strategy tuned for lightweight-thread environments
	// where an unbounded spinner steals the processor the holder needs.
	Adaptive
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case TAS:
		return "tas"
	case TTAS:
		return "ttas"
	case TASTTAS:
		return "tas+ttas"
	case TCLEAR:
		return "test-and-clear"
	case Queue:
		return "queue"
	case Cohort:
		return "cohort"
	case Adaptive:
		return "adaptive"
	default:
		return "policy(?)"
	}
}

// SimStats is a snapshot of a SimLock's accounting.
type SimStats struct {
	Acquisitions int64 // successful Lock/TryLock acquisitions
	FirstTry     int64 // acquisitions that succeeded on the first attempt
	SpinLoops    int64 // spin iterations executed while waiting
	Handoffs     int64 // direct holder-to-waiter handoffs (queue/cohort/adaptive)
	Parks        int64 // waiters that stopped spinning and parked (adaptive)
}

// SimLock is a simple lock over a simulated hw.Cell, parameterized by
// acquisition policy. All operations name the simulated CPU performing
// them; spin loops checkpoint that CPU so pending interrupts are taken
// while spinning with interrupts enabled — exactly the behaviour the
// Section 7 deadlock analysis depends on.
type SimLock struct {
	cell   *hw.Cell
	policy Policy
	ext    *simExt // arsenal state; nil for the classic spin policies

	acquisitions atomic.Int64
	firstTry     atomic.Int64
	spinLoops    atomic.Int64
}

// NewSim creates an unlocked simulated simple lock on machine m with the
// given acquisition policy.
//
// Deprecated: use NewSimWith, the options construction path shared with
// the production lock: NewSimWith(Opts{Machine: m, Algorithm: p}).
func NewSim(m *hw.Machine, p Policy) *SimLock {
	return NewSimWith(Opts{Machine: m, Algorithm: p})
}

// NewSimWith creates an unlocked simulated simple lock from options;
// o.Machine is required. The lock-word cell's unlocked encoding is
// policy-specific: 0 for the set-style locks, 1 for test-and-clear.
func NewSimWith(o Opts) *SimLock {
	m := o.Machine
	if m == nil {
		panic("splock: NewSimWith requires Opts.Machine")
	}
	initial := int64(0)
	if o.Algorithm == TCLEAR {
		initial = 1
	}
	l := &SimLock{cell: m.NewCell(initial), policy: o.Algorithm}
	switch o.Algorithm {
	case Queue, Cohort, Adaptive:
		l.ext = newSimExt(m, o)
	}
	return l
}

// Policy returns the lock's acquisition policy.
func (l *SimLock) Policy() Policy { return l.policy }

// Lock acquires the lock from the given CPU, spinning per the policy.
func (l *SimLock) Lock(c *hw.CPU) {
	if l.ext != nil {
		l.lockExt(c)
		return
	}
	switch l.policy {
	case TAS:
		if l.cell.Swap(c, 1) == 0 {
			l.acquired(true)
			return
		}
		for {
			l.spin(c)
			if l.cell.Swap(c, 1) == 0 {
				l.acquired(false)
				return
			}
		}
	case TTAS:
		first := true
		for {
			for l.cell.Load(c) != 0 {
				first = false
				l.spin(c)
			}
			if l.cell.Swap(c, 1) == 0 {
				l.acquired(first)
				return
			}
			first = false
		}
	case TCLEAR:
		if l.cell.Swap(c, 0) != 0 {
			l.acquired(true)
			return
		}
		for {
			l.spin(c)
			if l.cell.Swap(c, 0) != 0 {
				l.acquired(false)
				return
			}
		}
	default: // TASTTAS
		if l.cell.Swap(c, 1) == 0 {
			l.acquired(true)
			return
		}
		for {
			for l.cell.Load(c) != 0 {
				l.spin(c)
			}
			if l.cell.Swap(c, 1) == 0 {
				l.acquired(false)
				return
			}
		}
	}
}

// Unlock releases the lock from the given CPU.
func (l *SimLock) Unlock(c *hw.CPU) {
	if l.ext != nil {
		l.unlockExt(c)
		return
	}
	if l.policy == TCLEAR {
		if l.cell.Swap(c, 1) != 0 {
			panic("splock: unlock of unlocked simulated lock")
		}
		return
	}
	if l.cell.Swap(c, 0) != 1 {
		panic("splock: unlock of unlocked simulated lock")
	}
}

// TryLock makes a single atomic attempt from the given CPU.
func (l *SimLock) TryLock(c *hw.CPU) bool {
	if l.ext != nil {
		return l.trylockExt(c)
	}
	if l.policy == TCLEAR {
		if l.cell.Swap(c, 0) != 0 {
			l.acquired(true)
			return true
		}
		return false
	}
	if l.cell.Swap(c, 1) == 0 {
		l.acquired(true)
		return true
	}
	return false
}

// SpinOnce performs exactly one spin iteration of the lock's policy from
// the given CPU, returning true if the lock was acquired. It exists so
// experiments can drive spin phases deterministically (fixed iteration
// counts) instead of depending on host scheduling: one TAS iteration is an
// atomic attempt; one TTAS iteration is a cached test, escalating to the
// atomic attempt only when the lock was observed free.
func (l *SimLock) SpinOnce(c *hw.CPU) bool {
	if l.ext != nil {
		if l.extStep(c) {
			return true
		}
		l.spinLoops.Add(1)
		return false
	}
	switch l.policy {
	case TAS:
		if l.cell.Swap(c, 1) == 0 {
			l.acquired(false)
			return true
		}
		l.spinLoops.Add(1)
		return false
	case TCLEAR:
		if l.cell.Swap(c, 0) != 0 {
			l.acquired(false)
			return true
		}
		l.spinLoops.Add(1)
		return false
	default: // TTAS, TASTTAS: in the spin phase both test before setting
		if l.cell.Load(c) != 0 {
			l.spinLoops.Add(1)
			return false
		}
		if l.cell.Swap(c, 1) == 0 {
			l.acquired(false)
			return true
		}
		l.spinLoops.Add(1)
		return false
	}
}

// spin accounts one spin iteration and lets the CPU take interrupts, then
// yields so other simulated CPUs can run on few host cores.
func (l *SimLock) spin(c *hw.CPU) {
	l.spinLoops.Add(1)
	c.Checkpoint()
	runtime.Gosched()
}

func (l *SimLock) acquired(first bool) {
	l.acquisitions.Add(1)
	if first {
		l.firstTry.Add(1)
	}
}

// Stats returns a snapshot of the lock's accounting.
func (l *SimLock) Stats() SimStats {
	s := SimStats{
		Acquisitions: l.acquisitions.Load(),
		FirstTry:     l.firstTry.Load(),
		SpinLoops:    l.spinLoops.Load(),
	}
	if l.ext != nil {
		s.Handoffs = l.ext.handoffs.Load()
		s.Parks = l.ext.parks.Load()
	}
	return s
}

// CellStats returns the underlying cell's coherence accounting.
func (l *SimLock) CellStats() hw.CellStats { return l.cell.Stats() }

package splock

import (
	"sync"
	"sync/atomic"

	"machlock/internal/hw"
)

// This file is the SimLock side of the algorithm arsenal: queue, cohort,
// and adaptive locks over simulated hw cells, so experiment E14 can count
// the interconnect traffic each algorithm generates the same way E1 does
// for TAS/TTAS.
//
// The split of responsibilities mirrors how the coherence argument works:
// everything the interconnect would see — the lock word, each waiter's
// local spin flag, handoff stores, the wakeup IPI — is a charged hw.Cell
// access; the queue ORDER and park bookkeeping live behind a host mutex,
// standing in for the per-waiter qnode pointers a real MCS lock chases
// (which are local accesses on the owner's own cache lines). A parked
// adaptive waiter polls only host state: a sleeping thread generates no
// interconnect traffic, which is the entire point of parking.
//
// Per-CPU engagement state makes SpinOnce work for the arsenal exactly as
// it does for TAS/TTAS: the first step from an idle CPU engages it
// (enqueues, starts local spinning), each further step is one spin
// iteration of the policy, and the step that observes the grant takes the
// lock over. Experiments drive this deterministically.

// simPhase is a CPU's engagement state on one arsenal SimLock.
type simPhase uint8

const (
	simIdle      simPhase = iota
	simSpinLocal          // queue: spinning on own flag cell; cohort: on local word; adaptive: on lock word
	simSpinGlob           // cohort: local head, spinning on the global word
	simParked             // adaptive: parked, polling host wake state only
)

// simCPUState is one CPU's per-lock arsenal state.
type simCPUState struct {
	phase simPhase
	spins int      // adaptive: spin iterations since engagement
	wcell *hw.Cell // queue: the flag this waiter spins on / is granted through
	woken bool     // adaptive: releaser posted our wakeup
}

type simExt struct {
	kind Policy
	m    *hw.Machine

	mu sync.Mutex
	st []simCPUState // indexed by CPU id

	// queue/adaptive bookkeeping (host side; charged traffic goes
	// through the cells).
	queue  []int // CPU ids in FIFO arrival order (queue kind)
	holder int   // CPU id of the current holder, -1 when free
	parked []int // adaptive: parked CPU ids in park order

	// cohort state: one local lock word per machine cell plus the global
	// word (l.cell). localWaiters counts engaged CPUs per domain so a
	// releaser knows whether a cohort successor exists (the real lock
	// reads its local queue's next pointer — a local access).
	locals        []*hw.Cell
	localWaiters  []int
	globalOwned   []bool // global lock handed over with the local word
	handoffBudget int
	localChain    int  // consecutive same-domain handoffs
	tryHeld       bool // cohort: holder entered via TryLock (no local word held)

	spinBudget int // adaptive

	handoffs atomic.Int64
	parks    atomic.Int64
}

func newSimExt(m *hw.Machine, o Opts) *simExt {
	e := &simExt{
		kind:   o.Algorithm,
		m:      m,
		st:     make([]simCPUState, m.NCPU()),
		holder: -1,
	}
	switch o.Algorithm {
	case Cohort:
		e.locals = make([]*hw.Cell, m.NCells())
		for i := range e.locals {
			e.locals[i] = m.NewCell(0)
		}
		e.localWaiters = make([]int, m.NCells())
		e.globalOwned = make([]bool, m.NCells())
		e.handoffBudget = o.HandoffBudget
		if e.handoffBudget <= 0 {
			e.handoffBudget = DefaultHandoffBudget
		}
	case Adaptive:
		e.spinBudget = o.SpinBudget
		if e.spinBudget <= 0 {
			e.spinBudget = DefaultSpinBudget
		}
	}
	return e
}

// lockExt blocks until the lock is acquired, driving the policy state
// machine one step at a time. Parked adaptive waiters burn no simulated
// traffic while they wait (the host Gosched stands in for the scheduler
// running something else).
func (l *SimLock) lockExt(c *hw.CPU) {
	if l.extStep(c) {
		return
	}
	for {
		l.spin(c)
		if l.extStep(c) {
			return
		}
	}
}

// unlockExt releases per the policy.
func (l *SimLock) unlockExt(c *hw.CPU) {
	e := l.ext
	switch e.kind {
	case Queue:
		e.mu.Lock()
		if e.holder != c.ID() {
			e.mu.Unlock()
			panic("splock: unlock of simulated queue lock by non-holder")
		}
		if len(e.queue) == 0 {
			e.holder = -1
			e.mu.Unlock()
			// MCS tail CAS back to free: the release's one RMW.
			l.cell.CompareAndSwap(c, int64(c.ID()+1), 0)
			return
		}
		w := e.queue[0]
		e.queue = e.queue[1:]
		e.holder = w
		wc := e.st[w].wcell
		e.mu.Unlock()
		e.handoffs.Add(1)
		// Grant store into the successor's flag cell: invalidates its
		// locally cached copy; its next (and final) spin load refills it.
		wc.Store(c, 0)
	case Adaptive:
		e.mu.Lock()
		if e.holder != c.ID() {
			e.mu.Unlock()
			panic("splock: unlock of simulated adaptive lock by non-holder")
		}
		e.holder = -1
		var wakeCell *hw.Cell
		if len(e.parked) > 0 {
			w := e.parked[0]
			e.parked = e.parked[1:]
			e.st[w].woken = true
			wakeCell = e.st[w].wcell
			e.handoffs.Add(1)
		}
		e.mu.Unlock()
		l.cell.Store(c, 0)
		if wakeCell != nil {
			// The wakeup IPI: one interconnect transaction to the
			// sleeper's cell, whose re-check load then refills it.
			wakeCell.Store(c, 0)
		}
	case Cohort:
		e.mu.Lock()
		if e.holder != c.ID() {
			e.mu.Unlock()
			panic("splock: unlock of simulated cohort lock by non-holder")
		}
		d := c.CellID()
		e.holder = -1
		if e.tryHeld {
			// A TryLock holder owns only the global word: release it and
			// reset the handoff chain; local queues proceed on their own.
			e.tryHeld = false
			e.localChain = 0
			e.mu.Unlock()
			l.cell.Store(c, 0)
			return
		}
		handoff := e.localWaiters[d] > 0 && e.localChain < e.handoffBudget
		if handoff {
			e.localChain++
			e.globalOwned[d] = true
			e.handoffs.Add(1)
		} else {
			e.localChain = 0
			e.globalOwned[d] = false
		}
		e.mu.Unlock()
		if !handoff {
			// Release the global word; the next holder's acquisition
			// moves its line (cross-cell when from another domain).
			l.cell.Store(c, 0)
		}
		// Release the local word either way; it never leaves the domain.
		e.locals[d].Store(c, 0)
	}
}

// trylockExt makes one attempt without engaging in any queue.
func (l *SimLock) trylockExt(c *hw.CPU) bool {
	e := l.ext
	switch e.kind {
	case Queue:
		e.mu.Lock()
		if e.holder != -1 || len(e.queue) > 0 {
			e.mu.Unlock()
			// The failed tail CAS still owned the line.
			l.cell.CompareAndSwap(c, 0, 0)
			return false
		}
		e.holder = c.ID()
		e.mu.Unlock()
		l.cell.CompareAndSwap(c, 0, int64(c.ID()+1))
		l.acquired(true)
		return true
	case Adaptive:
		e.mu.Lock()
		free := e.holder == -1
		if free {
			e.holder = c.ID()
		}
		e.mu.Unlock()
		if !free {
			l.cell.CompareAndSwap(c, 0, 0) // failed CAS traffic
			return false
		}
		l.cell.CompareAndSwap(c, 0, 1)
		l.acquired(true)
		return true
	case Cohort:
		e.mu.Lock()
		free := e.holder == -1 && l.cell.Value() == 0
		if free {
			e.holder = c.ID()
			e.tryHeld = true
		}
		e.mu.Unlock()
		if !free {
			l.cell.CompareAndSwap(c, 0, 0)
			return false
		}
		l.cell.CompareAndSwap(c, 0, 1)
		l.acquired(true)
		return true
	}
	return false
}

// extStep drives one policy step for CPU c: engaging when idle, one spin
// iteration while waiting. It returns true when this step acquired the
// lock. The caller accounts spin loops for failed steps.
func (l *SimLock) extStep(c *hw.CPU) bool {
	e := l.ext
	id := c.ID()
	switch e.kind {
	case Queue:
		return l.stepQueue(c, id)
	case Adaptive:
		return l.stepAdaptive(c, id)
	case Cohort:
		return l.stepCohort(c, id)
	}
	return false
}

func (l *SimLock) stepQueue(c *hw.CPU, id int) bool {
	e := l.ext
	st := &e.st[id]
	if st.phase == simIdle {
		// Engage: one atomic swap on the tail, then either immediate
		// ownership (queue was empty) or local spinning on our own cell.
		e.mu.Lock()
		if e.holder == -1 && len(e.queue) == 0 {
			e.holder = id
			e.mu.Unlock()
			l.cell.Swap(c, int64(id+1))
			l.acquired(true)
			return true
		}
		st.wcell = e.m.NewCell(1)
		e.queue = append(e.queue, id)
		e.mu.Unlock()
		l.cell.Swap(c, int64(id+1))
		st.phase = simSpinLocal
		// Prime the local copy: the first load of our own flag fills the
		// line; every subsequent spin is a local hit.
		st.wcell.Load(c)
		return false
	}
	if st.wcell.Load(c) == 0 {
		st.phase = simIdle
		st.wcell = nil
		l.acquired(false)
		return true
	}
	return false
}

func (l *SimLock) stepAdaptive(c *hw.CPU, id int) bool {
	e := l.ext
	st := &e.st[id]
	switch st.phase {
	case simIdle:
		st.spins = 0
		// TTAS first touch: test, then set if free.
		if l.cell.Load(c) == 0 {
			e.mu.Lock()
			free := e.holder == -1
			if free {
				e.holder = id
			}
			e.mu.Unlock()
			if free {
				l.cell.Swap(c, 1)
				l.acquired(true)
				return true
			}
		}
		st.phase = simSpinLocal
		return false
	case simSpinLocal:
		st.spins++
		if st.spins > e.spinBudget {
			// Budget exhausted: park. The wcell is where the releaser's
			// wakeup lands; no further traffic until then.
			st.wcell = e.m.NewCell(1)
			st.woken = false
			e.mu.Lock()
			e.parked = append(e.parked, id)
			e.mu.Unlock()
			e.parks.Add(1)
			st.phase = simParked
			return false
		}
		if l.cell.Load(c) == 0 {
			e.mu.Lock()
			free := e.holder == -1
			if free {
				e.holder = id
			}
			e.mu.Unlock()
			if free {
				l.cell.Swap(c, 1)
				st.phase = simIdle
				l.acquired(false)
				return true
			}
		}
		return false
	case simParked:
		e.mu.Lock()
		woken := st.woken
		e.mu.Unlock()
		if !woken {
			return false // parked: zero interconnect traffic
		}
		// Woken: read the wakeup cell (refill), then take the lock the
		// releaser reserved by waking exactly one sleeper.
		st.wcell.Load(c)
		st.wcell = nil
		e.mu.Lock()
		free := e.holder == -1
		if free {
			e.holder = id
		} else {
			// Someone (a spinner) beat us between wake and here; go back
			// to spinning with a fresh budget.
			st.woken = false
			st.spins = 0
			st.phase = simSpinLocal
		}
		e.mu.Unlock()
		if !free {
			return false
		}
		l.cell.Swap(c, 1)
		st.phase = simIdle
		l.acquired(false)
		return true
	}
	return false
}

func (l *SimLock) stepCohort(c *hw.CPU, id int) bool {
	e := l.ext
	st := &e.st[id]
	d := c.CellID()
	switch st.phase {
	case simIdle:
		e.mu.Lock()
		e.localWaiters[d]++
		e.mu.Unlock()
		st.phase = simSpinLocal
		return false
	case simSpinLocal:
		// TTAS on the domain-local word; its line never leaves the cell.
		if e.locals[d].Load(c) != 0 {
			return false
		}
		if e.locals[d].Swap(c, 1) != 0 {
			return false
		}
		// Local head. Did a same-domain predecessor hand the global over?
		e.mu.Lock()
		owned := e.globalOwned[d]
		if owned {
			e.globalOwned[d] = false
			e.holder = id
			e.localWaiters[d]--
		}
		e.mu.Unlock()
		if owned {
			st.phase = simIdle
			l.acquired(false)
			return true
		}
		st.phase = simSpinGlob
		return false
	case simSpinGlob:
		// TTAS on the global word, contending only with other domains'
		// local heads.
		if l.cell.Load(c) != 0 {
			return false
		}
		e.mu.Lock()
		free := e.holder == -1 && l.cell.Value() == 0
		if free {
			e.holder = id
			e.localWaiters[d]--
		}
		e.mu.Unlock()
		if !free {
			return false
		}
		l.cell.Swap(c, 1)
		st.phase = simIdle
		l.acquired(false)
		return true
	}
	return false
}

package object

// Machsim suite for the kernel-object discipline of Section 9: operate
// vs. deactivate vs. release explored over schedules, with the harness's
// relock-requires-reference and refcount models watching every boundary.

import (
	"testing"

	"machlock/internal/machsim"
	"machlock/internal/sched"
)

// TestSimDeactivationDiscipline races an operator (re-checking liveness
// after every relock, per the no-caching rule) against a terminator that
// deactivates and drops the creator reference. On every schedule the
// destroy must run exactly once, after both sides' references are gone.
func TestSimDeactivationDiscipline(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		o := &Object{}
		o.Init("victim")
		s.Label(o, "victim")
		o.TakeRef() // the operator's own reference, taken before the race
		destroyed := 0
		operated := 0
		s.Spawn("op", func(_ *sched.Thread) {
			o.Lock()
			if o.CheckActive() == nil {
				operated++
			}
			o.Unlock()
			o.TakeRef() // covered by the reference we already hold
			// Relock: liveness must be re-decided, nothing cached across
			// the unlock — the terminator may have run in between.
			o.Lock()
			stillActive := o.CheckActive() == nil
			o.Unlock()
			_ = stillActive
			o.Release(func() { destroyed++ })
			o.Release(func() { destroyed++ })
		})
		s.Spawn("term", func(_ *sched.Thread) {
			o.Lock()
			if !o.Deactivate() {
				s.Fail("terminator lost a deactivation race nobody else entered")
			}
			o.Unlock()
			o.Release(func() { destroyed++ }) // the creator's reference
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if destroyed != 1 {
				fail("destroy ran %d times, want exactly once", destroyed)
			}
			if !o.Destroyed() {
				fail("object not destroyed after last release")
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimReleaseRacesTakeRef: two holders, one cloning an extra reference
// and releasing twice while the other releases its own — the count must
// walk down monotonically to zero with no resurrection, which the model's
// ref-skew/ref-resurrect checkers verify at every transition.
func TestSimReleaseRacesTakeRef(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		o := &Object{}
		o.Init("counted")
		s.Label(o, "counted")
		o.TakeRef() // second holder's reference
		destroyed := 0
		s.Spawn("cloner", func(_ *sched.Thread) {
			o.TakeRef()
			o.Release(func() { destroyed++ })
			o.Release(func() { destroyed++ })
		})
		s.Spawn("dropper", func(_ *sched.Thread) {
			o.Release(func() { destroyed++ }) // the creator's reference
		})
		s.AtEnd(func(fail func(string, ...any)) {
			if destroyed != 1 || !o.Destroyed() {
				fail("destroyed=%d (want 1), Destroyed=%v", destroyed, o.Destroyed())
			}
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{Preemptions: 2, MaxRuns: 1500}, machsim.Options{})
	machsim.Check(t, res)
}

// TestSimLockAfterDestroyCaught: relocking an object whose last reference
// is gone is the use-after-free of the paper's discipline. The substrate
// panics; the harness must convert that into a reported violation with
// the offending schedule, not a crashed test process.
func TestSimLockAfterDestroyCaught(t *testing.T) {
	scenario := func(s *machsim.Sim) {
		o := &Object{}
		o.Init("gone")
		s.Label(o, "gone")
		s.Spawn("stale", func(_ *sched.Thread) {
			o.Release(nil) // the last reference: storage is gone
			o.Lock()       // protocol violation
			o.Unlock()
		})
	}
	res := machsim.Explore(scenario, machsim.DFSConfig{}, machsim.Options{})
	if !res.Failed() {
		t.Fatalf("lock-after-destroy went unreported: %s", res.Summary())
	}
	if res.Violations[0].Checker != "panic" {
		t.Fatalf("expected the substrate panic to be captured, got %v", res.Violations[0])
	}
}

// Package object implements the Mach kernel-object discipline that ties
// together a simple lock, a reference count, and the deactivation protocol
// of Section 9 of the paper:
//
//   - A reference guarantees only that the DATA STRUCTURE exists; it makes
//     no promise about the object's state. A lock is needed to rely on
//     state.
//   - An object may be deactivated (actively terminated) at any moment it
//     is unlocked, so every operation that depends on liveness re-checks
//     the deactivation flag each time it locks the object, and pointers
//     read from the object cannot be cached across an unlock/relock.
//   - A reference is required in order to (re)lock an object at all.
//   - Deactivation is for objects that are actively terminated (tasks,
//     threads, ports); objects that passively vanish with their last
//     reference (memory maps) never set the flag.
//
// Object is intended for embedding: kernel types (Task, Thread, Port,
// vm.Object) embed it and gain the whole discipline.
package object

import (
	"errors"
	"fmt"
	"sync/atomic"

	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/machsim/simhook"
	"machlock/internal/trace"
)

// ErrDeactivated is returned by operations that find their object
// deactivated; per Section 9 the operation "performs whatever recovery code
// is required to avoid corruption of data structures and returns a failure
// code".
var ErrDeactivated = errors.New("object: deactivated")

// Object is the embeddable kernel-object base: one simple lock, one
// reference count, one active flag. The zero value is NOT usable; call
// Init (objects are created with one reference, and a zero count is
// indistinguishable from a destroyed object).
type Object struct {
	lock   splock.Lock
	refs   refcount.Count
	active bool
	name   string
	class  *trace.Class

	destroyed atomic.Bool
}

// SetClass registers the object with the observability layer under one
// class (typically per kernel type: "kern.task", "ipc.port"): its lock
// traffic, reference traffic, and deactivations all aggregate there, and
// the object joins the class's live census (decremented when the last
// reference destroys it). Call right after Init, before the object is
// shared.
func (o *Object) SetClass(c *trace.Class) {
	o.class = c
	o.lock.SetClass(c)
	o.refs.SetClass(c)
	c.CensusInc()
}

// Init initializes the object as active with a single (creator's)
// reference, per Section 8: "An object is created with a single reference
// to itself. The creator is responsible for removing this reference when
// it is no longer needed."
func (o *Object) Init(name string) {
	o.name = name
	o.refs.Init(1)
	o.active = true
}

// Name returns the object's name.
func (o *Object) Name() string { return o.name }

// Lock locks the object's simple lock. The caller must hold a reference:
// "A reference is required in order to relock the object."
func (o *Object) Lock() {
	if o.destroyed.Load() {
		panic(fmt.Sprintf("object: %s: lock of destroyed object (missing reference?)", o.name))
	}
	o.lock.Lock() //machlock:holds — wrapper: the hold escapes to Lock's caller
	simhook.Note(simhook.ObjLock, o, int64(o.refs.Refs()))
}

// Unlock unlocks the object's simple lock.
func (o *Object) Unlock() {
	simhook.Note(simhook.ObjUnlock, o, 0)
	o.lock.Unlock()
}

// TryLock makes a single attempt at the object's lock.
func (o *Object) TryLock() bool {
	if o.destroyed.Load() {
		panic(fmt.Sprintf("object: %s: lock of destroyed object", o.name))
	}
	if !o.lock.TryLock() { //machlock:holds — wrapper: a successful try escapes to TryLock's caller
		return false
	}
	simhook.Note(simhook.ObjLock, o, int64(o.refs.Refs()))
	return true
}

// Active reports whether the object has not been deactivated. The object
// must be locked: the answer is only stable while the lock is held, which
// is the entire point of Section 9's re-check rule.
func (o *Object) Active() bool { return o.active }

// CheckActive returns ErrDeactivated if the object has been deactivated.
// The object must be locked. Operations call this after every relock.
func (o *Object) CheckActive() error {
	if !o.active {
		return ErrDeactivated
	}
	return nil
}

// Deactivate marks the object deactivated, returning false if it already
// was (terminations race; exactly one caller wins and runs the shutdown).
// The object must be locked.
func (o *Object) Deactivate() bool {
	if !o.active {
		return false
	}
	o.active = false
	simhook.Note(simhook.ObjDeactivate, o, 0)
	o.class.Deactivated()
	return true
}

// Reference clones a reference. The object must be locked (cloning is an
// increment under the object lock and never blocks, so it is safe while
// holding other locks).
func (o *Object) Reference() { o.refs.Clone() }

// TakeRef is the lock-clone-unlock convenience used by translation code:
// it acquires the object lock, clones a reference, and unlocks. The caller
// must already hold (or be covered by) a reference, e.g. the one held by
// the translation data structure it found the object through.
func (o *Object) TakeRef() {
	o.Lock()
	o.refs.Clone()
	o.Unlock()
}

// Refs returns the current reference count. The object must be locked.
func (o *Object) Refs() int32 { return o.refs.Refs() }

// Release drops one reference. If it was the last, destroy is run (with
// the object unlocked) and the object's storage is considered gone: any
// later Lock panics. Because destroy may block (it frees resources), the
// paper forbids calling Release while holding any non-sleep lock or between
// assert_wait and thread_block; passing the releasing thread's spin-held
// count through sched's checked-lock machinery enforces the former for
// checked locks.
//
// Release returns true when the object was destroyed.
func (o *Object) Release(destroy func()) bool {
	o.Lock()
	//machvet:allow holdblock — the decrement under the object's own lock is the release protocol; the blocking destroy runs after Unlock
	last := o.refs.Release()
	o.Unlock()
	if !last {
		return false
	}
	// Count reached zero: no pointers, no operations in progress, no way
	// to invoke new operations. Destroy.
	o.destroyed.Store(true)
	simhook.Note(simhook.ObjDestroyed, o, 0)
	o.class.CensusDec()
	if destroy != nil {
		destroy()
	}
	return true
}

// Destroyed reports whether the object's storage has been reclaimed.
// Intended for assertions and tests.
func (o *Object) Destroyed() bool { return o.destroyed.Load() }

package object

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func newObj(name string) *Object {
	o := &Object{}
	o.Init(name)
	return o
}

func TestInitCreatesActiveWithOneRef(t *testing.T) {
	o := newObj("task")
	o.Lock()
	if !o.Active() {
		t.Fatal("fresh object not active")
	}
	if o.Refs() != 1 {
		t.Fatalf("refs = %d, want 1 (creator's)", o.Refs())
	}
	if o.Name() != "task" {
		t.Fatalf("name = %q", o.Name())
	}
	o.Unlock()
}

func TestReferenceUnderLock(t *testing.T) {
	o := newObj("x")
	o.Lock()
	o.Reference()
	if o.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", o.Refs())
	}
	o.Unlock()
	if o.Release(nil) {
		t.Fatal("release with refs outstanding destroyed object")
	}
}

func TestTakeRefConvenience(t *testing.T) {
	o := newObj("x")
	o.TakeRef()
	o.Lock()
	if o.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", o.Refs())
	}
	o.Unlock()
}

func TestReleaseLastRunsDestroy(t *testing.T) {
	o := newObj("x")
	var destroyed atomic.Bool
	if !o.Release(func() { destroyed.Store(true) }) {
		t.Fatal("last release did not report destruction")
	}
	if !destroyed.Load() {
		t.Fatal("destroy hook not run")
	}
	if !o.Destroyed() {
		t.Fatal("Destroyed() false after destruction")
	}
}

func TestLockAfterDestroyPanics(t *testing.T) {
	o := newObj("x")
	o.Release(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("lock of destroyed object did not panic (use-after-free undetected)")
		}
	}()
	o.Lock()
}

func TestDeactivateExactlyOnce(t *testing.T) {
	o := newObj("x")
	o.Lock()
	if !o.Deactivate() {
		t.Fatal("first deactivate returned false")
	}
	if o.Deactivate() {
		t.Fatal("second deactivate returned true")
	}
	if o.Active() {
		t.Fatal("object still active after deactivate")
	}
	if err := o.CheckActive(); !errors.Is(err, ErrDeactivated) {
		t.Fatalf("CheckActive = %v, want ErrDeactivated", err)
	}
	o.Unlock()
}

func TestDeactivatedStructureSurvivesWhileReferenced(t *testing.T) {
	// Section 9: "The data structure will survive so long as there are
	// references to it" even after deactivation.
	o := newObj("task")
	o.TakeRef() // a second holder
	o.Lock()
	o.Deactivate()
	o.Unlock()
	if o.Release(nil) { // creator's ref: one remains
		t.Fatal("structure destroyed while referenced")
	}
	// The remaining holder can still lock and observe deactivation.
	o.Lock()
	if o.CheckActive() == nil {
		t.Fatal("deactivation not observed")
	}
	o.Unlock()
	if !o.Release(nil) {
		t.Fatal("final release did not destroy")
	}
}

func TestConcurrentTerminationsOneWinner(t *testing.T) {
	o := newObj("x")
	var winners atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.Lock()
			if o.Deactivate() {
				winners.Add(1)
			}
			o.Unlock()
		}()
	}
	wg.Wait()
	if winners.Load() != 1 {
		t.Fatalf("%d termination winners, want exactly 1", winners.Load())
	}
}

func TestConcurrentRefChurnNeverDestroysEarly(t *testing.T) {
	o := newObj("x")
	var destroyed atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				o.TakeRef()
				if o.Release(func() { destroyed.Store(true) }) {
					t.Error("destroyed while creator reference held")
					return
				}
			}
		}()
	}
	wg.Wait()
	if destroyed.Load() {
		t.Fatal("object destroyed early")
	}
	if !o.Release(nil) {
		t.Fatal("final release did not destroy")
	}
}

func TestTryLock(t *testing.T) {
	o := newObj("x")
	o.Lock()
	if o.TryLock() {
		t.Fatal("TryLock succeeded on locked object")
	}
	o.Unlock()
	if !o.TryLock() {
		t.Fatal("TryLock failed on unlocked object")
	}
	o.Unlock()
}

// TestSection9RelockRecheckPattern exercises the canonical usage: an
// operation that unlocks and relocks must re-check liveness, and handles
// the deactivation race gracefully.
func TestSection9RelockRecheckPattern(t *testing.T) {
	o := newObj("x")
	start := make(chan struct{})
	opDone := make(chan error, 1)

	go func() {
		// The operation: lock, check, unlock (to do blocking work),
		// relock, re-check.
		o.Lock()
		if err := o.CheckActive(); err != nil {
			o.Unlock()
			opDone <- err
			return
		}
		o.Unlock()
		<-start // deactivation happens here, while unlocked
		o.Lock()
		err := o.CheckActive()
		o.Unlock()
		opDone <- err
	}()

	o.Lock()
	o.Deactivate()
	o.Unlock()
	close(start)
	if err := <-opDone; !errors.Is(err, ErrDeactivated) {
		t.Fatalf("operation result = %v, want ErrDeactivated (missed the re-check)", err)
	}
}

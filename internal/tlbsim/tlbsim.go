// Package tlbsim implements TLB consistency by shootdown over the
// simulated multiprocessor, reproducing the interrupt-level barrier
// synchronization of Section 7 of the paper (and of Black et al.,
// "Translation Lookaside Buffer Consistency: A Software Approach",
// ASPLOS 1989, the paper's reference [2]).
//
// A shootdown posts a TLB update to every other processor's update queue
// and sends an inter-processor interrupt at splvm. The barrier semantics
// are the dangerous part: "all involved processors must enter the interrupt
// service routine before any can leave". A processor spinning for (or
// holding) a pmap lock with interrupts disabled can therefore deadlock the
// whole machine — the three-processor scenario of Section 7.
//
// The special logic the paper describes is implemented exactly: a
// processor that registers itself as acquiring or holding a pmap lock with
// interrupts disabled (ExemptBegin) is removed from the set of processors
// that must participate in the barrier. "The TLB update is still posted
// for that processor, and an interrupt is sent to it. The processor will
// reenable interrupts, and hence take this interrupt before it touches
// pageable memory again." Setting ExemptionDisabled reverts to the naive
// barrier so the deadlock can be demonstrated (cmd/deadlockdemo, E9).
package tlbsim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"machlock/internal/core/splock"
	"machlock/internal/hw"
)

// Update is one posted TLB change: invalidate VA (the only operation a
// shootdown needs; refills come from the page tables afterwards).
type Update struct {
	VA uint64
}

// Stats is a snapshot of shootdown accounting.
type Stats struct {
	Shootdowns     int64
	IPIs           int64
	Exemptions     int64 // barrier participants skipped because exempt
	UpdatesApplied int64
	TimedOut       int64 // TryShootdown calls that gave up (deadlock detected)
}

// tlb is one processor's TLB.
type tlb struct {
	mu      sync.Mutex
	entries map[uint64]uint64
}

// System is the TLB-consistency subsystem for one simulated machine.
type System struct {
	m *hw.Machine

	// ExemptionDisabled turns off the pmap-spinner special logic,
	// reproducing the deadlock the logic exists to prevent. Use only
	// with TryShootdown.
	ExemptionDisabled bool

	shootLock splock.Lock // serializes shootdowns machine-wide

	tlbs    []*tlb
	queueMu []sync.Mutex
	queues  [][]Update
	exempt  []atomic.Bool

	shootdowns     atomic.Int64
	ipis           atomic.Int64
	exemptions     atomic.Int64
	updatesApplied atomic.Int64
	timedOut       atomic.Int64
}

// New creates the TLB subsystem for machine m.
func New(m *hw.Machine) *System {
	n := m.NCPU()
	s := &System{
		m:       m,
		tlbs:    make([]*tlb, n),
		queueMu: make([]sync.Mutex, n),
		queues:  make([][]Update, n),
		exempt:  make([]atomic.Bool, n),
	}
	for i := range s.tlbs {
		s.tlbs[i] = &tlb{entries: make(map[uint64]uint64)}
	}
	return s
}

// Fill loads a translation into cpu's TLB (as a hardware table walk would).
func (s *System) Fill(c *hw.CPU, va, pa uint64) {
	t := s.tlbs[c.ID()]
	t.mu.Lock()
	t.entries[va] = pa
	t.mu.Unlock()
}

// Lookup consults cpu's TLB.
func (s *System) Lookup(c *hw.CPU, va uint64) (uint64, bool) {
	t := s.tlbs[c.ID()]
	t.mu.Lock()
	defer t.mu.Unlock()
	pa, ok := t.entries[va]
	return pa, ok
}

// ExemptBegin registers cpu as acquiring or holding a pmap lock with
// interrupts disabled: it raises the CPU to splvm and marks it exempt from
// shootdown barriers. Returns the previous SPL for ExemptEnd.
func (s *System) ExemptBegin(c *hw.CPU) hw.Level {
	// Order matters: mark exempt BEFORE raising the SPL. An initiator
	// that samples us non-exempt did so while our SPL still admitted the
	// IPI... but the IPI may arrive after we raise it, so the barrier
	// wait also re-checks exemption dynamically (see waitBarrier).
	s.exempt[c.ID()].Store(true)
	return c.SetSPL(hw.SPLVM)
}

// ExemptEnd clears the exemption and restores the SPL; lowering the SPL
// delivers any pending shootdown IPI immediately, so the processor's TLB
// is consistent "before it touches pageable memory again".
func (s *System) ExemptEnd(c *hw.CPU, prev hw.Level) {
	s.exempt[c.ID()].Store(false)
	c.SetSPL(prev) // checkpoint: pending IPIs drain here
}

// Exempt reports whether cpu is currently exempt.
func (s *System) Exempt(c *hw.CPU) bool { return s.exempt[c.ID()].Load() }

// barrier is one shootdown's rendezvous state.
type barrier struct {
	arrived  []atomic.Bool
	released atomic.Bool
}

// postUpdate queues an update for cpu id.
func (s *System) postUpdate(id int, u Update) {
	s.queueMu[id].Lock()
	s.queues[id] = append(s.queues[id], u)
	s.queueMu[id].Unlock()
}

// drain applies all pending updates to cpu's TLB.
func (s *System) drain(c *hw.CPU) {
	id := c.ID()
	s.queueMu[id].Lock()
	ups := s.queues[id]
	s.queues[id] = nil
	s.queueMu[id].Unlock()
	if len(ups) == 0 {
		return
	}
	t := s.tlbs[id]
	t.mu.Lock()
	for _, u := range ups {
		delete(t.entries, u.VA)
	}
	t.mu.Unlock()
	s.updatesApplied.Add(int64(len(ups)))
}

// Shootdown invalidates va in every processor's TLB, performing the full
// interrupt-level barrier synchronization. It must be called from code
// running on the initiating CPU. Blocks until the barrier completes (which
// with exemptions enabled always happens).
func (s *System) Shootdown(initiator *hw.CPU, va uint64) {
	if !s.doShootdown(initiator, va, 0) {
		panic("tlbsim: unbounded shootdown failed (impossible)")
	}
}

// TryShootdown is Shootdown with a bound on barrier wait iterations; it
// returns false if the barrier did not complete, which with
// ExemptionDisabled set diagnoses the Section 7 deadlock. The TLB update
// is posted regardless.
func (s *System) TryShootdown(initiator *hw.CPU, va uint64, maxSpins int) bool {
	return s.doShootdown(initiator, va, maxSpins)
}

func (s *System) doShootdown(initiator *hw.CPU, va uint64, maxSpins int) bool {
	// Spin for the machine-wide shootdown lock WITH interrupts enabled:
	// a competing initiator must keep taking the winner's IPI while it
	// waits its turn, or two concurrent shootdowns deadlock each other.
	for !s.shootLock.TryLock() {
		initiator.Checkpoint()
		runtime.Gosched()
	}
	defer s.shootLock.Unlock()
	s.shootdowns.Add(1)

	// The initiator runs the protocol at splvm: its own shootdown IPIs
	// are blocked, and it must not take a competing shootdown mid-flight.
	prev := initiator.SetSPL(hw.SPLVM)
	defer initiator.Splx(prev)

	n := s.m.NCPU()
	b := &barrier{arrived: make([]atomic.Bool, n)}
	u := Update{VA: va}

	// Post the update and send the IPI to every other processor —
	// including exempt ones, whose interrupt stays pending until they
	// lower their SPL.
	for id := 0; id < n; id++ {
		if id == initiator.ID() {
			continue
		}
		s.postUpdate(id, u)
		s.ipis.Add(1)
		s.m.IPI(id, hw.SPLVM, func(c *hw.CPU) {
			s.drain(c)
			b.arrived[c.ID()].Store(true)
			// All involved processors must enter before any leaves.
			for !b.released.Load() {
				runtime.Gosched()
			}
		})
	}

	// Apply locally: this shootdown's update plus anything pending.
	t := s.tlbs[initiator.ID()]
	t.mu.Lock()
	delete(t.entries, u.VA)
	t.mu.Unlock()
	s.updatesApplied.Add(1)
	s.drain(initiator)
	b.arrived[initiator.ID()].Store(true)

	// Barrier wait: every other processor must have arrived or be
	// exempt. Exemption is re-checked each iteration — this is the
	// "special logic [that] removes a processor attempting to acquire or
	// holding such a lock from the set of processors that must
	// participate in the barrier synchronization".
	spins := 0
	for {
		all := true
		for id := 0; id < n; id++ {
			if id == initiator.ID() || b.arrived[id].Load() {
				continue
			}
			if !s.ExemptionDisabled && s.exempt[id].Load() {
				continue
			}
			all = false
			break
		}
		if all {
			break
		}
		spins++
		if maxSpins > 0 && spins >= maxSpins {
			// Deadlock diagnosed. Release the barrier so arrived
			// handlers do not spin forever, and report failure.
			s.timedOut.Add(1)
			b.released.Store(true)
			return false
		}
		runtime.Gosched()
	}

	// Count how many of the targets we proceeded without.
	for id := 0; id < n; id++ {
		if id != initiator.ID() && !b.arrived[id].Load() {
			s.exemptions.Add(1)
		}
	}
	b.released.Store(true)
	return true
}

// Stats returns shootdown accounting.
func (s *System) Stats() Stats {
	return Stats{
		Shootdowns:     s.shootdowns.Load(),
		IPIs:           s.ipis.Load(),
		Exemptions:     s.exemptions.Load(),
		UpdatesApplied: s.updatesApplied.Load(),
		TimedOut:       s.timedOut.Load(),
	}
}

package tlbsim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/hw"
)

func TestFillLookup(t *testing.T) {
	m := hw.New(2)
	s := New(m)
	c := m.CPU(0)
	s.Fill(c, 0x1000, 7)
	if pa, ok := s.Lookup(c, 0x1000); !ok || pa != 7 {
		t.Fatalf("lookup = %d %v", pa, ok)
	}
	if _, ok := s.Lookup(m.CPU(1), 0x1000); ok {
		t.Fatal("TLBs are per-CPU; fill leaked")
	}
}

// TestShootdownInvalidatesEverywhere runs worker goroutines on every other
// CPU that poll for interrupts (as idle kernel loops do) while one CPU
// shoots down a translation.
func TestShootdownInvalidatesEverywhere(t *testing.T) {
	m := hw.New(4)
	s := New(m)
	for i := 0; i < 4; i++ {
		s.Fill(m.CPU(i), 0x2000, 9)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Checkpoint()
				}
			}
		}(m.CPU(i))
	}
	s.Shootdown(m.CPU(0), 0x2000)
	close(stop)
	wg.Wait()
	for i := 0; i < 4; i++ {
		if _, ok := s.Lookup(m.CPU(i), 0x2000); ok {
			t.Fatalf("cpu %d TLB entry survived shootdown", i)
		}
	}
	st := s.Stats()
	if st.Shootdowns != 1 || st.IPIs != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShootdownSingleCPUIsLocal(t *testing.T) {
	m := hw.New(1)
	s := New(m)
	c := m.CPU(0)
	s.Fill(c, 5, 5)
	s.Shootdown(c, 5)
	if _, ok := s.Lookup(c, 5); ok {
		t.Fatal("local entry survived")
	}
	if s.Stats().IPIs != 0 {
		t.Fatal("IPIs sent on uniprocessor")
	}
}

// TestExemptCPUDoesNotBlockBarrier is the special logic of Section 7: a
// processor holding a pmap lock with interrupts disabled is removed from
// the barrier set; the update is still posted and applied when it
// re-enables interrupts.
func TestExemptCPUDoesNotBlockBarrier(t *testing.T) {
	m := hw.New(2)
	s := New(m)
	locked := m.CPU(1)
	s.Fill(locked, 0x3000, 4)

	prev := s.ExemptBegin(locked) // CPU 1 "spinning on a pmap lock" at splvm
	done := make(chan struct{})
	go func() {
		s.Shootdown(m.CPU(0), 0x3000) // must complete despite CPU 1 silent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shootdown blocked on an exempt processor")
	}
	// The stale entry is still in CPU 1's TLB (it hasn't taken the IPI)…
	if _, ok := s.Lookup(locked, 0x3000); !ok {
		t.Fatal("entry vanished before the IPI was taken")
	}
	// …but ending the exemption (lowering SPL) drains it immediately.
	s.ExemptEnd(locked, prev)
	if _, ok := s.Lookup(locked, 0x3000); ok {
		t.Fatal("pending update not applied when interrupts re-enabled")
	}
	if s.Stats().Exemptions != 1 {
		t.Fatalf("exemptions = %d, want 1", s.Stats().Exemptions)
	}
	if s.Exempt(locked) {
		t.Fatal("CPU still exempt after ExemptEnd")
	}
}

// TestDeadlockWithoutExemption reproduces the failure the special logic
// prevents: with exemption disabled, a shootdown against a processor that
// has interrupts disabled never completes.
func TestDeadlockWithoutExemption(t *testing.T) {
	m := hw.New(2)
	s := New(m)
	s.ExemptionDisabled = true
	locked := m.CPU(1)
	prev := s.ExemptBegin(locked) // raises SPL; exemption flag ignored

	if s.TryShootdown(m.CPU(0), 0x4000, 10000) {
		t.Fatal("shootdown completed against a non-responsive CPU (deadlock not reproduced)")
	}
	if s.Stats().TimedOut != 1 {
		t.Fatalf("timeouts = %d, want 1", s.Stats().TimedOut)
	}
	// Recovery: the spinner re-enables interrupts and drains.
	s.ExemptEnd(locked, prev)
}

// TestConcurrentShootdownsSerialize checks that competing initiators make
// progress (the shootdown lock spin keeps taking IPIs).
func TestConcurrentShootdownsSerialize(t *testing.T) {
	m := hw.New(4)
	s := New(m)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Poller CPUs 2,3.
	for i := 2; i < 4; i++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Checkpoint()
					runtime.Gosched()
				}
			}
		}(m.CPU(i))
	}
	// CPUs 0 and 1 both shoot down repeatedly. After finishing its own
	// shootdowns each initiator keeps polling for interrupts: a CPU that
	// stops taking IPIs would (correctly) stall every later barrier.
	var initiators sync.WaitGroup
	var finished sync.WaitGroup
	for i := 0; i < 2; i++ {
		initiators.Add(1)
		finished.Add(1)
		go func(c *hw.CPU) {
			defer initiators.Done()
			for j := 0; j < 10; j++ {
				s.Fill(c, uint64(j), uint64(j))
				s.Shootdown(c, uint64(j))
			}
			finished.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Checkpoint()
					runtime.Gosched()
				}
			}
		}(m.CPU(i))
	}
	donec := make(chan struct{})
	go func() { finished.Wait(); close(donec) }()
	select {
	case <-donec:
	case <-time.After(20 * time.Second):
		t.Fatal("concurrent shootdowns deadlocked")
	}
	close(stop)
	wg.Wait()
	initiators.Wait()
	if s.Stats().Shootdowns != 20 {
		t.Fatalf("shootdowns = %d, want 20", s.Stats().Shootdowns)
	}
}

// TestSection7ThreeProcessorScenario reconstructs the paper's deadlock
// cast with the fix in place: P1 holds a (simulated) pmap lock with
// interrupts enabled; P2 spins for the lock with interrupts disabled
// (exempt); P3 initiates barrier synchronization. With the exemption
// logic, P3 completes.
func TestSection7ThreeProcessorScenario(t *testing.T) {
	m := hw.New(3)
	s := New(m)
	var lockWord atomic.Int32 // the pmap lock P1 holds and P2 wants
	lockWord.Store(1)

	// P2: interrupts disabled, spinning for the lock.
	p2 := m.CPU(1)
	prev := s.ExemptBegin(p2)
	p2done := make(chan struct{})
	go func() {
		for lockWord.Load() != 0 { // spin without checkpointing: interrupts are off
			time.Sleep(time.Millisecond)
		}
		s.ExemptEnd(p2, prev)
		close(p2done)
	}()

	// P1: holds the lock, interrupts enabled, polling.
	p1 := m.CPU(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p1.Checkpoint()
			}
		}
	}()

	// P3: initiates the barrier.
	done := make(chan struct{})
	go func() {
		s.Shootdown(m.CPU(2), 0x5000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("three-processor scenario deadlocked despite exemption logic")
	}
	lockWord.Store(0) // P1 releases; P2 stops spinning
	<-p2done
	close(stop)
	wg.Wait()
}

package benchjson

import (
	"path/filepath"
	"testing"
)

func sample() *Report {
	r := New("machd", "test", 8)
	r.DurationSec = 60
	r.Totals = Totals{Ops: 1000, OpsPerSec: 16.7}
	r.Scenarios["lookup"] = &Scenario{
		Ops: 900, OpsPerSec: 15, MixShare: 0.9,
		P50Ns: 1 << 12, P90Ns: 1 << 14, P99Ns: 1 << 16, MaxNs: 1 << 20,
	}
	r.Scenarios["churn"] = &Scenario{Ops: 100, P50Ns: 10, P90Ns: 10, P99Ns: 20}
	r.Incidents = map[string]int64{"deadlock": 0}
	return r
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Name != "machd" || back.GoMaxProcs != 8 {
		t.Fatalf("header mangled: %+v", back)
	}
	s := back.Scenarios["lookup"]
	if s == nil || s.Ops != 900 || s.P99Ns != 1<<16 {
		t.Fatalf("scenario mangled: %+v", s)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":       func(r *Report) { r.Schema = "bogus/v9" },
		"no name":            func(r *Report) { r.Name = "" },
		"no scenarios":       func(r *Report) { r.Scenarios = nil },
		"null scenario":      func(r *Report) { r.Scenarios["x"] = nil },
		"negative counts":    func(r *Report) { r.Scenarios["lookup"].Errors = -1 },
		"quantile inversion": func(r *Report) { r.Scenarios["lookup"].P50Ns = 1 << 30 },
	}
	for name, mutate := range cases {
		r := sample()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", name)
		}
	}
}

package benchjson

import (
	"path/filepath"
	"testing"
)

func sample() *Report {
	r := New("machd", "test", 8)
	r.DurationSec = 60
	r.Totals = Totals{Ops: 1000, OpsPerSec: 16.7}
	r.Scenarios["lookup"] = &Scenario{
		Ops: 900, OpsPerSec: 15, MixShare: 0.9,
		P50Ns: 1 << 12, P90Ns: 1 << 14, P99Ns: 1 << 16, MaxNs: 1 << 20,
	}
	r.Scenarios["churn"] = &Scenario{Ops: 100, P50Ns: 10, P90Ns: 10, P99Ns: 20}
	r.Incidents = map[string]int64{"deadlock": 0}
	return r
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Name != "machd" || back.GoMaxProcs != 8 {
		t.Fatalf("header mangled: %+v", back)
	}
	s := back.Scenarios["lookup"]
	if s == nil || s.Ops != 900 || s.P99Ns != 1<<16 {
		t.Fatalf("scenario mangled: %+v", s)
	}
}

func TestCompare(t *testing.T) {
	old := sample()
	cur := sample()
	if regs := Compare(old, cur, 4.0); len(regs) != 0 {
		t.Fatalf("identical reports must not regress: %v", regs)
	}

	// p99 blowing past tolerance is caught; within-tolerance drift is not.
	cur = sample()
	cur.Scenarios["lookup"].P99Ns = old.Scenarios["lookup"].P99Ns * 5
	regs := Compare(old, cur, 4.0)
	if len(regs) != 1 || regs[0].Scenario != "lookup" || regs[0].Metric != "p99_ns" {
		t.Fatalf("want one lookup p99 regression, got %v", regs)
	}
	if regs[0].Ratio < 4.9 || regs[0].Ratio > 5.1 {
		t.Fatalf("ratio: %v", regs[0])
	}
	cur.Scenarios["lookup"].P99Ns = old.Scenarios["lookup"].P99Ns * 3
	if regs := Compare(old, cur, 4.0); len(regs) != 0 {
		t.Fatalf("3x within a 4x gate must pass: %v", regs)
	}

	// Latency improving is never a regression.
	cur = sample()
	cur.Scenarios["lookup"].P50Ns = 1
	cur.Scenarios["lookup"].P99Ns = 2
	if regs := Compare(old, cur, 4.0); len(regs) != 0 {
		t.Fatalf("faster run flagged: %v", regs)
	}

	// New errors in a previously clean scenario are flagged regardless of
	// latency.
	cur = sample()
	cur.Scenarios["churn"].Errors = 7
	regs = Compare(old, cur, 4.0)
	if len(regs) != 1 || regs[0].Metric != "errors" || regs[0].Scenario != "churn" {
		t.Fatalf("want churn errors regression, got %v", regs)
	}

	// Scenarios present on only one side are skipped, as are zero-op runs.
	cur = sample()
	delete(cur.Scenarios, "churn")
	cur.Scenarios["fresh"] = &Scenario{Ops: 5, P50Ns: 1, P90Ns: 1, P99Ns: 1}
	old.Scenarios["lookup"].Ops = 0
	if regs := Compare(old, cur, 4.0); len(regs) != 0 {
		t.Fatalf("membership changes are not regressions: %v", regs)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":       func(r *Report) { r.Schema = "bogus/v9" },
		"no name":            func(r *Report) { r.Name = "" },
		"no scenarios":       func(r *Report) { r.Scenarios = nil },
		"null scenario":      func(r *Report) { r.Scenarios["x"] = nil },
		"negative counts":    func(r *Report) { r.Scenarios["lookup"].Errors = -1 },
		"quantile inversion": func(r *Report) { r.Scenarios["lookup"].P50Ns = 1 << 30 },
	}
	for name, mutate := range cases {
		r := sample()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", name)
		}
	}
}

// Package benchjson defines the machine-readable benchmark report schema
// (`machlock-bench/v1`) that starts the repo's performance trajectory:
// every sustained-load machd run and every cmd/machbench -json run emits
// the same shape, so macro (daemon SLO) and micro (experiment) numbers can
// be diffed, plotted, and regression-gated by one consumer.
//
// The schema is deliberately flat JSON with stable snake_case keys. A
// scenario is one named workload (a machd traffic mix member, or one
// machbench experiment); quantiles are nanoseconds from power-of-two
// histograms (accurate to 2×, like everything else in the repo's
// measurement stack).
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the format identifier carried in every report.
const Schema = "machlock-bench/v1"

// Report is one benchmark run.
type Report struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`         // e.g. "machd", "machbench"
	GeneratedBy string `json:"generated_by"` // emitting tool
	GoMaxProcs  int    `json:"gomaxprocs"`

	DurationSec float64 `json:"duration_sec"`

	Totals    Totals               `json:"totals"`
	Scenarios map[string]*Scenario `json:"scenarios"`

	// LockClasses snapshots the hottest lock/refcount classes of the run —
	// the per-class wait quantiles that sit next to the per-op latency in
	// the Prometheus scrape, in trajectory form.
	LockClasses []LockClass `json:"lock_classes,omitempty"`

	// Incidents counts monitor incidents filed during the run, by kind.
	Incidents map[string]int64 `json:"incidents,omitempty"`

	Notes []string `json:"notes,omitempty"`
}

// Totals aggregates the run.
type Totals struct {
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	Timeouts  int64   `json:"timeouts"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Scenario is one named workload's results. For machd scenarios the
// latency quantiles are client-observed RPC latency and the wait/work
// split comes from the server-side operation spans; machbench experiments
// fill Tables/Notes with their rendered output instead.
type Scenario struct {
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	Timeouts  int64   `json:"timeouts"`
	Shed      int64   `json:"shed,omitempty"` // open-loop arrivals dropped at the offered-load queue
	OpsPerSec float64 `json:"ops_per_sec"`
	MixShare  float64 `json:"mix_share,omitempty"` // fraction of offered load

	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`

	// Server-side wait-vs-work split (from trace operation spans).
	WaitP50Ns int64 `json:"wait_p50_ns"`
	WaitP99Ns int64 `json:"wait_p99_ns"`
	WorkP50Ns int64 `json:"work_p50_ns"`
	WorkP99Ns int64 `json:"work_p99_ns"`

	// Rendered plain-text tables and notes (machbench experiments).
	Tables []string `json:"tables,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

// LockClass is one trace class's contention snapshot.
type LockClass struct {
	Class          string  `json:"class"` // pkg/name
	Kind           string  `json:"kind"`
	Acquisitions   int64   `json:"acquisitions"`
	Contended      int64   `json:"contended"`
	ContentionRate float64 `json:"contention_rate"`
	WaitP50Ns      int64   `json:"wait_p50_ns"`
	WaitP90Ns      int64   `json:"wait_p90_ns"`
	WaitP99Ns      int64   `json:"wait_p99_ns"`
	HoldP99Ns      int64   `json:"hold_p99_ns"`
}

// New returns a report skeleton with the schema stamped.
func New(name, generatedBy string, gomaxprocs int) *Report {
	return &Report{
		Schema:      Schema,
		Name:        name,
		GeneratedBy: generatedBy,
		GoMaxProcs:  gomaxprocs,
		Scenarios:   make(map[string]*Scenario),
	}
}

// Validate checks the report is well-formed: right schema, named, at least
// one scenario, and internally consistent quantiles. This is what the
// machd smoke asserts about the BENCH_machd.json it just wrote.
func (r *Report) Validate() error {
	if r == nil {
		return fmt.Errorf("benchjson: nil report")
	}
	if r.Schema != Schema {
		return fmt.Errorf("benchjson: schema %q, want %q", r.Schema, Schema)
	}
	if r.Name == "" {
		return fmt.Errorf("benchjson: report has no name")
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("benchjson: report has no scenarios")
	}
	for name, s := range r.Scenarios {
		if s == nil {
			return fmt.Errorf("benchjson: scenario %q is null", name)
		}
		if s.Ops < 0 || s.Errors < 0 || s.Timeouts < 0 {
			return fmt.Errorf("benchjson: scenario %q has negative counts", name)
		}
		if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns {
			return fmt.Errorf("benchjson: scenario %q quantiles not monotone: p50=%d p90=%d p99=%d",
				name, s.P50Ns, s.P90Ns, s.P99Ns)
		}
	}
	return nil
}

// Regression is one metric that moved past tolerance between two runs of
// the same trajectory.
type Regression struct {
	Scenario string  // scenario name
	Metric   string  // "p50_ns", "p99_ns", or "errors"
	Old, New int64   // the two values
	Ratio    float64 // New/Old (0 when Old is 0)
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %d -> %d (%.2fx)", r.Scenario, r.Metric, r.Old, r.New, r.Ratio)
}

// Compare diffs two consecutive trajectory reports scenario-by-scenario
// and returns the regressions: a p50 or p99 latency that grew by more than
// tol (a ratio — 4.0 allows two power-of-two histogram buckets of drift,
// the repo's measurement accuracy on a noisy CI box), or errors appearing
// in a scenario that had none. Scenarios present in only one report are
// skipped: mixes come and go across PRs, and a disappearing scenario is a
// review concern, not a perf gate's.
func Compare(old, cur *Report, tol float64) []Regression {
	var regs []Regression
	if old == nil || cur == nil {
		return regs
	}
	check := func(name, metric string, o, n int64) {
		if o <= 0 || n <= o {
			return
		}
		if ratio := float64(n) / float64(o); ratio > tol {
			regs = append(regs, Regression{Scenario: name, Metric: metric, Old: o, New: n, Ratio: ratio})
		}
	}
	for name, os := range old.Scenarios {
		ns, ok := cur.Scenarios[name]
		if !ok || os == nil || ns == nil || os.Ops == 0 || ns.Ops == 0 {
			continue
		}
		check(name, "p50_ns", os.P50Ns, ns.P50Ns)
		check(name, "p99_ns", os.P99Ns, ns.P99Ns)
		if os.Errors == 0 && ns.Errors > 0 {
			regs = append(regs, Regression{
				Scenario: name, Metric: "errors",
				Old: os.Errors, New: ns.Errors,
			})
		}
	}
	return regs
}

// WriteFile writes the report as indented JSON (path "-" writes to
// stdout).
func WriteFile(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile parses a report back (for the smoke assertion and trajectory
// consumers).
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return &r, nil
}

package deadlock

import (
	"strings"
	"sync"
	"testing"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

// withTracker installs a fresh tracker for the test and removes it after.
func withTracker(t *testing.T) *Tracker {
	t.Helper()
	tr := NewTracker()
	tr.Install()
	t.Cleanup(tr.Uninstall)
	return tr
}

func TestNoCycleOnHealthyLocking(t *testing.T) {
	tr := withTracker(t)
	a, b := cxlock.New(true), cxlock.New(true)
	tr.Name(a, "A")
	tr.Name(b, "B")
	w := sched.Go("w", func(self *sched.Thread) {
		for i := 0; i < 100; i++ {
			a.Write(self)
			b.Write(self)
			b.Done(self)
			a.Done(self)
		}
	})
	w.Join()
	if cycles := tr.Detect(); len(cycles) != 0 {
		t.Fatalf("phantom cycles: %v", cycles)
	}
	if tr.Snapshot() != "" {
		t.Fatalf("holds/waits leaked:\n%s", tr.Snapshot())
	}
}

func TestDetectsABBADeadlock(t *testing.T) {
	tr := withTracker(t)
	a, b := cxlock.New(true), cxlock.New(true)
	tr.Name(a, "A")
	tr.Name(b, "B")

	// Both threads must hold their first lock before either goes for its
	// second, or one can sneak through both and no deadlock forms.
	var firstHolds sync.WaitGroup
	firstHolds.Add(2)
	gate := make(chan struct{})
	t1 := sched.Go("t1", func(self *sched.Thread) {
		a.Write(self)
		firstHolds.Done()
		<-gate
		b.Write(self) // blocks forever: t2 holds B
		b.Done(self)
		a.Done(self)
	})
	t2 := sched.Go("t2", func(self *sched.Thread) {
		b.Write(self)
		firstHolds.Done()
		<-gate
		a.Write(self) // blocks forever: t1 holds A
		a.Done(self)
		b.Done(self)
	})
	firstHolds.Wait()
	close(gate)

	var cycles []Cycle
	deadline := time.Now().Add(5 * time.Second)
	for len(cycles) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ABBA deadlock not detected; state:\n%s", tr.Snapshot())
		}
		cycles = tr.DetectStable(3, 2*time.Millisecond)
	}
	text := cycles[0].String()
	for _, want := range []string{"t1", "t2", "A", "B", "waits", "held-by"} {
		if !strings.Contains(text, want) {
			t.Fatalf("cycle report %q missing %q", text, want)
		}
	}

	// A true deadlock has no legal resolution from a third party (forcing
	// a release would corrupt the protocol), so the two goroutines are
	// intentionally left parked on their test-local locks.
	_ = t1
	_ = t2
}

func TestDetectsSection71Cycle(t *testing.T) {
	// The real thing: vm_map_pageable's recursive hold vs the pageout
	// daemon, observed as a wait-for cycle… of length 1 edge? No — the
	// daemon waits for the map lock held by the wirer, and the wirer
	// waits for memory (not a lock), so the graph shows the daemon
	// blocked on the wirer. A full CYCLE needs both directions; here we
	// assert the tracker at least pins the daemon's wait on the wirer's
	// hold, which is the diagnostic a developer needs.
	tr := withTracker(t)
	pool := vm.NewPool(4)
	m := vm.NewMap(pool)
	hog := vm.NewObject(pool, 4)
	target := vm.NewObject(pool, 4)
	boss := sched.New("boss")
	if err := m.Allocate(boss, 0, 4, hog, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(boss, 10, 4, target, 0); err != nil {
		t.Fatal(err)
	}
	for va := uint64(0); va < 4; va++ {
		if err := m.Fault(boss, va, false); err != nil {
			t.Fatal(err)
		}
	}

	wirer := sched.Go("wirer", func(self *sched.Thread) {
		m.WireRecursive(self, 10, 14)
	})
	for m.ShortageWaits() == 0 {
		time.Sleep(time.Millisecond)
	}
	daemon := sched.Go("pageout", func(self *sched.Thread) {
		m.ReclaimPages(self, 16) // blocks behind the recursive read hold
	})

	// The daemon must appear waiting on a lock held by the wirer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := tr.Snapshot()
		if strings.Contains(snap, "pageout waiting for") &&
			strings.Contains(snap, "held by wirer") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall not visible in tracker:\n%s", snap)
		}
		time.Sleep(time.Millisecond)
	}
	// Resolve and clean up.
	pool.EmergencyAdd(4)
	wirer.Join()
	daemon.Join()
}

func TestReleasedBalancesMultisets(t *testing.T) {
	// Exercise the multiset accounting directly.
	tr2 := NewTracker()
	thread := sched.New("x")
	lock := cxlock.New(false)
	tr2.Acquired(lock, thread)
	tr2.Acquired(lock, thread)
	tr2.Released(lock, thread)
	if snap := tr2.Snapshot(); !strings.Contains(snap, "x2") && !strings.Contains(snap, "x (x1)") {
		// One hold must remain.
		if !strings.Contains(snap, "held by x") {
			t.Fatalf("multiset broken:\n%s", snap)
		}
	}
	tr2.Released(lock, thread)
	if snap := tr2.Snapshot(); snap != "" {
		t.Fatalf("holds leaked:\n%s", snap)
	}
}

func TestDetectStableFiltersTransients(t *testing.T) {
	tr := NewTracker()
	a := cxlock.New(false)
	t1, t2 := sched.New("t1"), sched.New("t2")
	// Fabricate a transient: a cycle present now but gone in later
	// samples.
	tr.Acquired(a, t1)
	tr.Waiting(a, t2)
	tr.Acquired(a, t2) // t2 also holds it (read share), t1 waits on t2's lock
	tr.Waiting(a, t1)
	if len(tr.Detect()) == 0 {
		t.Fatal("fabricated cycle not detected by single snapshot")
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		tr.DoneWaiting(a, t1)
		tr.DoneWaiting(a, t2)
	}()
	if cycles := tr.DetectStable(5, 3*time.Millisecond); len(cycles) != 0 {
		t.Fatalf("transient cycle reported as stable: %v", cycles)
	}
}

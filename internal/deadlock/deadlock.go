// Package deadlock implements a wait-for-graph deadlock detector for the
// complex locks of this kernel — debugging machinery in the spirit of the
// paper's design goal that "it should never be necessary to write kernel
// code that contains race conditions": when a locking protocol does go
// wrong, the detector names the cycle instead of leaving a hung machine.
//
// It observes lock events through the cxlock observer fan-out
// (cxlock.AddObserver; see Tracker.Install), maintaining the
// holds multiset (which threads hold which locks) and the wait map (which
// thread waits for which lock). Detect builds the wait-for graph — an
// edge from each waiter to every holder of its awaited lock — and reports
// the cycles it finds.
//
// Both §7.1 deadlocks reproduce under the detector: the vm_map_pageable
// recursive-lock deadlock appears as a cycle through the pageout daemon
// and the wiring thread (see the tests and cmd/deadlockdemo).
//
// The detector is advisory: a cycle among sleepable locks is a true
// deadlock, while a snapshot of spinning waiters may be transient, so
// DetectStable samples repeatedly and reports only cycles present in
// every sample.
package deadlock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
)

// Tracker is the observer-backed state. Create with NewTracker and
// install with Install (which registers it via cxlock.AddObserver, so
// it coexists with the trace layer and the monitor); uninstall with
// Uninstall.
type Tracker struct {
	mu sync.Mutex
	// holds[lock][thread] = number of holds.
	holds map[*cxlock.Lock]map[*sched.Thread]int
	// waits[thread] = lock the thread is currently waiting for.
	waits map[*sched.Thread]*cxlock.Lock
	// names gives locks human-readable labels for reports.
	names map[*cxlock.Lock]string
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		holds: make(map[*cxlock.Lock]map[*sched.Thread]int),
		waits: make(map[*sched.Thread]*cxlock.Lock),
		names: make(map[*cxlock.Lock]string),
	}
}

// Name labels a lock in reports.
func (tr *Tracker) Name(l *cxlock.Lock, name string) {
	tr.mu.Lock()
	tr.names[l] = name
	tr.mu.Unlock()
}

func (tr *Tracker) lockName(l *cxlock.Lock) string {
	if n, ok := tr.names[l]; ok {
		return n
	}
	return fmt.Sprintf("lock(%p)", l)
}

// Acquired implements cxlock.Observer.
func (tr *Tracker) Acquired(l *cxlock.Lock, t *sched.Thread) {
	tr.mu.Lock()
	m := tr.holds[l]
	if m == nil {
		m = make(map[*sched.Thread]int)
		tr.holds[l] = m
	}
	m[t]++
	tr.mu.Unlock()
}

// Released implements cxlock.Observer.
func (tr *Tracker) Released(l *cxlock.Lock, t *sched.Thread) {
	tr.mu.Lock()
	if m := tr.holds[l]; m != nil {
		if m[t] > 1 {
			m[t]--
		} else {
			delete(m, t)
			if len(m) == 0 {
				delete(tr.holds, l)
			}
		}
	}
	tr.mu.Unlock()
}

// Waiting implements cxlock.Observer.
func (tr *Tracker) Waiting(l *cxlock.Lock, t *sched.Thread) {
	tr.mu.Lock()
	tr.waits[t] = l
	tr.mu.Unlock()
}

// DoneWaiting implements cxlock.Observer.
func (tr *Tracker) DoneWaiting(l *cxlock.Lock, t *sched.Thread) {
	tr.mu.Lock()
	if tr.waits[t] == l {
		delete(tr.waits, t)
	}
	tr.mu.Unlock()
}

// Cycle is one detected deadlock cycle: threads and the locks linking
// them, formatted for humans by String.
type Cycle struct {
	Threads []*sched.Thread
	Locks   []*cxlock.Lock
	text    string
}

// String renders the cycle: t1 —waits→ L1 —held-by→ t2 —waits→ …
func (c Cycle) String() string { return c.text }

// Detect takes one snapshot of the wait-for graph and returns the cycles
// found. A reported cycle among sleepable locks is a real deadlock; among
// spinning waiters it may be a transient (use DetectStable).
func (tr *Tracker) Detect() []Cycle {
	tr.mu.Lock()
	// Build thread → threads-it-waits-on edges, remembering the lock.
	type edge struct {
		to   *sched.Thread
		lock *cxlock.Lock
	}
	edges := make(map[*sched.Thread][]edge)
	for t, l := range tr.waits {
		for holder := range tr.holds[l] {
			if holder != t {
				edges[t] = append(edges[t], edge{to: holder, lock: l})
			}
		}
	}
	names := make(map[*cxlock.Lock]string)
	for l := range tr.holds {
		names[l] = tr.lockName(l)
	}
	for _, l := range tr.waits {
		names[l] = tr.lockName(l)
	}
	tr.mu.Unlock()

	// DFS cycle detection over the snapshot.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*sched.Thread]int)
	var cycles []Cycle
	seen := make(map[string]bool)

	var stackT []*sched.Thread
	var stackL []*cxlock.Lock
	var dfs func(t *sched.Thread)
	dfs = func(t *sched.Thread) {
		color[t] = gray
		for _, e := range edges[t] {
			switch color[e.to] {
			case white:
				stackT = append(stackT, t)
				stackL = append(stackL, e.lock)
				dfs(e.to)
				stackT = stackT[:len(stackT)-1]
				stackL = stackL[:len(stackL)-1]
			case gray:
				// Found a cycle: unwind the stack back to e.to.
				start := 0
				for i, st := range stackT {
					if st == e.to {
						start = i
						break
					}
				}
				ct := append(append([]*sched.Thread{}, stackT[start:]...), t)
				cl := append(append([]*cxlock.Lock{}, stackL[start:]...), e.lock)
				c := renderCycle(ct, cl, names)
				if !seen[c.text] {
					seen[c.text] = true
					cycles = append(cycles, c)
				}
			}
		}
		color[t] = black
	}
	// Deterministic iteration order for reproducible reports.
	var roots []*sched.Thread
	for t := range edges {
		roots = append(roots, t)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })
	for _, t := range roots {
		if color[t] == white {
			dfs(t)
		}
	}
	return cycles
}

func renderCycle(ts []*sched.Thread, ls []*cxlock.Lock, names map[*cxlock.Lock]string) Cycle {
	// Rotate so the lexicographically smallest thread name leads,
	// giving every representation of the same cycle one canonical text.
	min := 0
	for i := range ts {
		if ts[i].Name() < ts[min].Name() {
			min = i
		}
	}
	rt := append(append([]*sched.Thread{}, ts[min:]...), ts[:min]...)
	rl := append(append([]*cxlock.Lock{}, ls[min:]...), ls[:min]...)

	var sb strings.Builder
	for i, t := range rt {
		name := names[rl[i]]
		if name == "" {
			name = fmt.Sprintf("lock(%p)", rl[i])
		}
		fmt.Fprintf(&sb, "%s —waits→ %s —held-by→ ", t.Name(), name)
	}
	sb.WriteString(rt[0].Name())
	return Cycle{Threads: rt, Locks: rl, text: sb.String()}
}

// DetectStable samples the graph `samples` times, `interval` apart, and
// returns only the cycles present in every sample — filtering out
// transient spin-wait cycles that resolve on their own.
func (tr *Tracker) DetectStable(samples int, interval time.Duration) []Cycle {
	if samples < 1 {
		samples = 1
	}
	counts := make(map[string]int)
	byText := make(map[string]Cycle)
	for i := 0; i < samples; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		for _, c := range tr.Detect() {
			counts[c.text]++
			byText[c.text] = c
		}
	}
	var stable []Cycle
	for text, n := range counts {
		if n == samples {
			stable = append(stable, byText[text])
		}
	}
	sort.Slice(stable, func(i, j int) bool { return stable[i].text < stable[j].text })
	return stable
}

// Snapshot returns a human-readable dump of current holds and waits.
func (tr *Tracker) Snapshot() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var sb strings.Builder
	var lines []string
	for l, m := range tr.holds {
		for t, n := range m {
			lines = append(lines, fmt.Sprintf("%s held by %s (x%d)", tr.lockName(l), t.Name(), n))
		}
	}
	for t, l := range tr.waits {
		lines = append(lines, fmt.Sprintf("%s waiting for %s", t.Name(), tr.lockName(l)))
	}
	sort.Strings(lines)
	for _, ln := range lines {
		sb.WriteString(ln)
		sb.WriteByte('\n')
	}
	return sb.String()
}

package deadlock

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machlock/internal/core/cxlock"
	"machlock/internal/sched"
)

func TestWaitGraphDOTRendersHoldsAndWaits(t *testing.T) {
	tr := NewTracker()
	a, b := cxlock.New(true), cxlock.New(true)
	tr.Name(a, "A")
	tr.Name(b, "B")
	t1, t2 := sched.New("t1"), sched.New("t2")
	tr.Acquired(a, t1)
	tr.Acquired(a, t1) // recursive: edge label should carry the count
	tr.Acquired(b, t2)
	dot := tr.WaitGraphDOT()
	for _, want := range []string{
		"digraph waitfor",
		`"thread:t1" [shape=ellipse]`,
		`"lock:A" [shape=box]`,
		`"lock:A" -> "thread:t1" [label="holds x2"]`,
		`"lock:B" -> "thread:t2" [label="holds"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	tr.Waiting(a, t2)
	dot = tr.WaitGraphDOT()
	if !strings.Contains(dot, `"thread:t2" -> "lock:A" [label="waits"]`) {
		t.Fatalf("DOT missing wait edge:\n%s", dot)
	}
	// Deterministic: two renders of the same state are identical.
	if again := tr.WaitGraphDOT(); again != dot {
		t.Fatalf("DOT not deterministic:\n%s\nvs\n%s", dot, again)
	}
}

// TestTrackerSeesBiasedReaders is the PR 2 regression: a reader that takes
// the BRAVO fast path (never touching the interlock) must still be visible
// to the deadlock tracker as a holder, and must be able to participate in
// a detected cycle. If the fast path ever stops emitting observer events,
// every deadlock through a read-held biased lock goes dark.
func TestTrackerSeesBiasedReaders(t *testing.T) {
	tr := withTracker(t)
	l1 := cxlock.NewWith(cxlock.Options{Sleep: true, ReaderBias: true, Name: "L1"})
	l2 := cxlock.NewWith(cxlock.Options{Sleep: true, Name: "L2"})
	tr.Name(l1, "L1")
	tr.Name(l2, "L2")

	var firstHolds sync.WaitGroup
	firstHolds.Add(2)
	gate := make(chan struct{})
	sched.Go("t1", func(self *sched.Thread) {
		l1.Read(self) // must take the bias fast path (no contention yet)
		firstHolds.Done()
		<-gate
		l2.Write(self) // blocks forever: t2 holds L2
		l2.Done(self)
		l1.Done(self)
	})
	sched.Go("t2", func(self *sched.Thread) {
		l2.Write(self)
		firstHolds.Done()
		<-gate
		l1.Write(self) // blocks forever: t1 holds L1 for reading
		l1.Done(self)
		l2.Done(self)
	})
	firstHolds.Wait()

	// Prove the read really went through the fast path, so the test is
	// exercising the biased-reader visibility, not the slow path.
	if got := l1.Stats().BiasedReads; got < 1 {
		t.Fatalf("setup: read did not take bias fast path (BiasedReads=%d)", got)
	}
	// The fast-path hold must already be in the tracker.
	if snap := tr.Snapshot(); !strings.Contains(snap, "L1 held by t1") {
		t.Fatalf("biased read hold invisible to tracker:\n%s", snap)
	}
	close(gate)

	var cycles []Cycle
	deadline := time.Now().Add(5 * time.Second)
	for len(cycles) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("deadlock through biased read hold not detected; state:\n%s", tr.Snapshot())
		}
		cycles = tr.DetectStable(3, 2*time.Millisecond)
	}
	text := cycles[0].String()
	for _, want := range []string{"t1", "t2", "L1", "L2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("cycle report %q missing %q", text, want)
		}
	}
	// The wait graph names the same stall.
	dot := tr.WaitGraphDOT()
	for _, want := range []string{
		`"lock:L1" -> "thread:t1"`,
		`"thread:t2" -> "lock:L1" [label="waits"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("wait graph missing %q:\n%s", want, dot)
		}
	}
	// As in TestDetectsABBADeadlock, the two goroutines are intentionally
	// left parked: a true deadlock has no legal third-party resolution.
}

// TestDetectStableQuietUnderSpinChurn runs real spinning waiters —
// consistently-ordered lock traffic with heavy contention — and asserts
// the stable detector never reports a cycle while the churn is live, and
// that the tracker's state drains completely once the threads exit.
func TestDetectStableQuietUnderSpinChurn(t *testing.T) {
	tr := withTracker(t)
	a, b := cxlock.New(false), cxlock.New(false) // spin locks: transient waiters
	tr.Name(a, "A")
	tr.Name(b, "B")

	var stop atomic.Bool
	var threads []*sched.Thread
	for i := 0; i < 3; i++ {
		threads = append(threads, sched.Go("w"+string(rune('0'+i)), func(self *sched.Thread) {
			for !stop.Load() {
				a.Write(self)
				b.Write(self)
				b.Done(self)
				a.Done(self)
			}
		}))
	}
	for i := 0; i < 2; i++ {
		threads = append(threads, sched.Go("r"+string(rune('0'+i)), func(self *sched.Thread) {
			for !stop.Load() {
				a.Read(self)
				b.Read(self)
				b.Done(self)
				a.Done(self)
			}
		}))
	}

	for i := 0; i < 10; i++ {
		if cycles := tr.DetectStable(3, time.Millisecond); len(cycles) != 0 {
			stop.Store(true)
			t.Fatalf("false positive under spin churn: %v", cycles)
		}
	}
	stop.Store(true)
	for _, th := range threads {
		th.Join()
	}
	if snap := tr.Snapshot(); snap != "" {
		t.Fatalf("holds/waits leaked after churn:\n%s", snap)
	}
}

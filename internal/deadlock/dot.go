package deadlock

import (
	"fmt"
	"sort"
	"strings"

	"machlock/internal/core/cxlock"
)

// WaitGraphDOT renders the current wait-for graph in Graphviz DOT form:
// thread nodes (ellipses), lock nodes (boxes), a "waits" edge from each
// waiting thread to its awaited lock and a "holds" edge from each lock to
// every holder. The output is deterministic (sorted by name) so two dumps
// of the same state diff cleanly; it is the /debug/machlock/waitgraph
// payload and the graph attached to monitor incident reports.
func (tr *Tracker) WaitGraphDOT() string {
	tr.mu.Lock()
	type hold struct {
		lock, thread string
		n            int
	}
	type wait struct {
		thread, lock string
	}
	var holds []hold
	var waits []wait
	threads := map[string]bool{}
	locks := map[string]bool{}
	for l, m := range tr.holds {
		ln := tr.lockName(l)
		locks[ln] = true
		for t, n := range m {
			threads[t.Name()] = true
			holds = append(holds, hold{lock: ln, thread: t.Name(), n: n})
		}
	}
	for t, l := range tr.waits {
		ln := tr.lockName(l)
		locks[ln] = true
		threads[t.Name()] = true
		waits = append(waits, wait{thread: t.Name(), lock: ln})
	}
	tr.mu.Unlock()

	sort.Slice(holds, func(i, j int) bool {
		if holds[i].lock != holds[j].lock {
			return holds[i].lock < holds[j].lock
		}
		return holds[i].thread < holds[j].thread
	})
	sort.Slice(waits, func(i, j int) bool {
		if waits[i].thread != waits[j].thread {
			return waits[i].thread < waits[j].thread
		}
		return waits[i].lock < waits[j].lock
	})

	var sb strings.Builder
	sb.WriteString("digraph waitfor {\n")
	sb.WriteString("  rankdir=LR;\n")
	for _, n := range sortedKeys(threads) {
		fmt.Fprintf(&sb, "  %q [shape=ellipse];\n", "thread:"+n)
	}
	for _, n := range sortedKeys(locks) {
		fmt.Fprintf(&sb, "  %q [shape=box];\n", "lock:"+n)
	}
	for _, w := range waits {
		fmt.Fprintf(&sb, "  %q -> %q [label=\"waits\"];\n", "thread:"+w.thread, "lock:"+w.lock)
	}
	for _, h := range holds {
		label := "holds"
		if h.n > 1 {
			label = fmt.Sprintf("holds x%d", h.n)
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", "lock:"+h.lock, "thread:"+h.thread, label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Install registers the tracker as one observer among possibly many
// (cxlock.AddObserver); Uninstall removes it. The tracker never owns the
// observer slot — debugging tools, the trace layer, and the continuous
// monitor are expected to observe simultaneously.
func (tr *Tracker) Install() { cxlock.AddObserver(tr) }

// Uninstall removes the tracker from the observer list.
func (tr *Tracker) Uninstall() { cxlock.RemoveObserver(tr) }

// compile-time check: the tracker satisfies the observer contract.
var _ cxlock.Observer = (*Tracker)(nil)

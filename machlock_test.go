package machlock_test

import (
	"errors"
	"sync"
	"testing"

	"machlock"
)

// TestQuickstart mirrors the package-documentation example.
func TestQuickstart(t *testing.T) {
	var lock machlock.SimpleLock
	lock.Lock()
	lock.Unlock()

	rw := machlock.NewLock(machlock.WithSleep())
	worker := machlock.Go("worker", func(self *machlock.Thread) {
		rw.Read(self)
		defer rw.Done(self)
	})
	worker.Join()
}

func TestPublicSimpleMutexImplementations(t *testing.T) {
	for _, m := range []machlock.SimpleMutex{&machlock.SimpleLock{}, machlock.NoopLock{}} {
		m.Lock()
		m.Unlock()
		if !m.TryLock() {
			t.Fatal("TryLock failed on free lock")
		}
		m.Unlock()
	}
}

func TestPublicCheckedLock(t *testing.T) {
	l := machlock.NewCheckedLock("public")
	th := machlock.NewThread("t")
	l.Lock(th)
	if l.HolderName() != "t" {
		t.Fatal("holder not tracked")
	}
	l.Unlock(th)
}

func TestPublicComplexLockProtocols(t *testing.T) {
	l := machlock.NewLock()
	th := machlock.NewThread("t")
	l.Read(th)
	if failed := l.ReadToWrite(th); failed {
		t.Fatal("solo upgrade failed")
	}
	l.WriteToRead(th)
	l.Done(th)
	s := l.Stats()
	if s.Upgrades != 1 || s.Downgrades != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPublicRefCountAndObject(t *testing.T) {
	var rc machlock.RefCount
	rc.Init(1)
	rc.Clone()
	if rc.Release() {
		t.Fatal("premature zero")
	}
	if !rc.Release() {
		t.Fatal("no zero at end")
	}

	var arc machlock.AtomicRefCount
	arc.Init(1)
	arc.Clone()
	arc.Release()
	if !arc.Release() {
		t.Fatal("atomic count did not zero")
	}

	var obj machlock.KernelObject
	obj.Init("thing")
	obj.Lock()
	if err := obj.CheckActive(); err != nil {
		t.Fatal(err)
	}
	obj.Deactivate()
	err := obj.CheckActive()
	obj.Unlock()
	if !errors.Is(err, machlock.ErrDeactivated) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublicEventWait(t *testing.T) {
	ev := new(int)
	th := machlock.NewThread("t")
	machlock.AssertWait(th, ev)
	if n := machlock.ThreadWakeup(ev); n != 1 {
		t.Fatalf("woke %d", n)
	}
	if r := machlock.ThreadBlock(th); r != machlock.NotWaiting {
		t.Fatalf("result = %v", r)
	}

	machlock.AssertWait(th, nil)
	if !machlock.ClearWait(th) {
		t.Fatal("ClearWait failed")
	}
	if r := machlock.ThreadBlock(th); r != machlock.NotWaiting {
		t.Fatalf("result = %v", r)
	}

	var mu sync.Mutex
	mu.Lock()
	sleeper := machlock.Go("s", func(self *machlock.Thread) {
		machlock.ThreadSleep(self, ev, mu.Unlock)
	})
	mu.Lock()
	machlock.ThreadWakeupOne(ev)
	mu.Unlock()
	sleeper.Join()
}

func TestPublicClassLock(t *testing.T) {
	l := machlock.NewClassLock()
	a, b := machlock.NewThread("a"), machlock.NewThread("b")
	l.Acquire(machlock.ForwardClass, a)
	if l.TryAcquire(machlock.ReverseClass, b) {
		t.Fatal("reverse class admitted while forward held")
	}
	if !l.TryAcquire(machlock.ForwardClass, b) {
		t.Fatal("forward class refused to share")
	}
	l.Release(machlock.ForwardClass, a)
	l.Release(machlock.ForwardClass, b)
	l.Acquire(machlock.ReverseClass, b)
	l.Release(machlock.ReverseClass, b)
}

func TestPublicStatLock(t *testing.T) {
	l := machlock.NewStatLock("public")
	l.Lock()
	l.Unlock()
	r := l.Report()
	if r.Name != "public" || r.Acquisitions != 1 {
		t.Fatalf("report = %+v", r)
	}
}

// Shootdown example: pmap updates with TLB consistency on the simulated
// multiprocessor — Sections 5 and 7 working together.
//
// Four simulated CPUs run worker loops that translate addresses through a
// shared pmap, caching translations in their TLBs. One CPU revokes a
// page's mappings (the reverse, pv-list-first direction, arbitrated by the
// pmap system lock) and shoots down the stale TLB entries with the
// interrupt-level barrier. A fifth actor holds a pmap lock with interrupts
// disabled to show the exemption logic keeping the barrier live.
//
// Run with:
//
//	go run ./examples/shootdown
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"machlock/internal/hw"
	"machlock/internal/pmap"
	"machlock/internal/tlbsim"
)

func main() {
	const ncpu = 4
	machine := hw.New(ncpu)
	tlbs := tlbsim.New(machine)
	ps := pmap.NewSystem(pmap.SystemLock, 32)
	pm := ps.NewPmap()

	// Populate translations: va n -> pa n%32.
	for va := uint64(0); va < 64; va++ {
		ps.Enter(pm, va, va%32, pmap.ProtAll)
	}

	var staleUses, lookups atomic.Int64
	revoked := uint64(7) // the physical page we will revoke
	var revokedFlag atomic.Bool

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i < ncpu; i++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			rng := uint64(c.ID()*2654435761 + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Checkpoint() // take any pending shootdown IPIs
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				va := rng % 64
				// TLB first; on miss, walk the pmap and fill.
				pa, ok := tlbs.Lookup(c, va)
				if !ok {
					var prot pmap.Prot
					pa, prot, ok = pm.Lookup(va)
					if !ok || prot == pmap.ProtNone {
						continue
					}
					tlbs.Fill(c, va, pa)
				}
				lookups.Add(1)
				// Using a translation to the revoked page after the
				// shootdown would be a consistency violation.
				if revokedFlag.Load() && pa == revoked {
					staleUses.Add(1)
				}
			}
		}(machine.CPU(i))
	}

	// Let the workers warm their TLBs.
	time.Sleep(20 * time.Millisecond)

	// CPU 0 revokes every mapping of page `revoked`, then shoots down the
	// TLBs. Order matters: page tables first, then the barrier; after the
	// barrier no CPU can load stale data.
	initiator := machine.CPU(0)
	before := ps.MappingsOf(revoked)
	ps.PageProtect(revoked, pmap.ProtNone)
	for va := revoked; va < 64; va += 32 {
		tlbs.Shootdown(initiator, va)
	}
	revokedFlag.Store(true)
	fmt.Printf("revoked page %d: %d mapping(s) removed, shootdown barrier completed\n",
		revoked, before)

	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := tlbs.Stats()
	fmt.Printf("workers performed %d lookups; stale uses after shootdown: %d\n",
		lookups.Load(), staleUses.Load())
	fmt.Printf("shootdowns=%d ipis=%d updates-applied=%d\n",
		st.Shootdowns, st.IPIs, st.UpdatesApplied)

	// The exemption logic: a CPU spinning on a pmap lock with interrupts
	// disabled does not stall the barrier.
	prev := tlbs.ExemptBegin(machine.CPU(1))
	start := time.Now()
	tlbs.Shootdown(initiator, 1)
	fmt.Printf("shootdown with CPU 1 exempt completed in %v (exemptions now %d)\n",
		time.Since(start).Round(time.Microsecond), tlbs.Stats().Exemptions)
	tlbs.ExemptEnd(machine.CPU(1), prev)
	fmt.Println("CPU 1 re-enabled interrupts and drained its pending TLB updates")
}

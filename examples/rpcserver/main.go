// RPC server example: the Section 10 kernel-operation protocol end to end.
//
// A "name service" kernel object is exported through a port. Clients send
// request messages; the dispatcher translates the port to the object,
// acquiring a reference so the object cannot vanish mid-operation; the
// operation locks the object and re-checks liveness; a terminator runs the
// shutdown sequence concurrently. Operations that lose the race fail
// cleanly — nothing ever touches a destroyed structure.
//
// Run with:
//
//	go run ./examples/rpcserver
package main

import (
	"fmt"

	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/sched"
)

// Operations on the directory object.
const (
	opPut = iota
	opGet
	opLen
	opShutdown
)

// directory is the kernel object: embedded object base + protected state.
type directory struct {
	object.Object
	entries map[string]string
}

func main() {
	// Build the object (one creator reference) and its port; the port's
	// kobject pointer carries its own cloned reference.
	dir := &directory{entries: make(map[string]string)}
	dir.Init("directory")
	port := ipc.NewPort("directory-port")
	dir.TakeRef()
	port.SetKObject(ipc.KindCustom, dir)

	srv := ipc.NewServer(ipc.Mach25)
	srv.Register(ipc.KindCustom, opPut, func(ctx *ipc.Context, ko ipc.KObject, req *ipc.Message) *ipc.Message {
		d := ko.(*directory)
		d.Lock()
		defer d.Unlock()
		if err := d.CheckActive(); err != nil {
			return ipc.NewErrorReply(req, err)
		}
		d.entries[req.Body[0].(string)] = req.Body[1].(string)
		return ipc.NewReply(req, "ok")
	})
	srv.Register(ipc.KindCustom, opGet, func(ctx *ipc.Context, ko ipc.KObject, req *ipc.Message) *ipc.Message {
		d := ko.(*directory)
		d.Lock()
		defer d.Unlock()
		if err := d.CheckActive(); err != nil {
			return ipc.NewErrorReply(req, err)
		}
		v, ok := d.entries[req.Body[0].(string)]
		return ipc.NewReply(req, v, ok)
	})
	srv.Register(ipc.KindCustom, opLen, func(ctx *ipc.Context, ko ipc.KObject, req *ipc.Message) *ipc.Message {
		d := ko.(*directory)
		d.Lock()
		defer d.Unlock()
		if err := d.CheckActive(); err != nil {
			return ipc.NewErrorReply(req, err)
		}
		return ipc.NewReply(req, len(d.entries))
	})
	srv.Register(ipc.KindCustom, opShutdown, func(ctx *ipc.Context, ko ipc.KObject, req *ipc.Message) *ipc.Message {
		won := ipc.Shutdown(port, ko.(*directory), nil)
		return ipc.NewReply(req, won)
	})

	// The kernel's message loop for this port.
	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})

	// Clients hammer the directory.
	clients := make([]*sched.Thread, 3)
	for i := range clients {
		id := i
		clients[i] = sched.Go(fmt.Sprintf("client-%d", id), func(self *sched.Thread) {
			puts, gets, failures := 0, 0, 0
			for n := 0; n < 200; n++ {
				key := fmt.Sprintf("key-%d-%d", id, n)
				resp, err := ipc.Call(self, port, opPut, key, "value")
				if err != nil {
					return // port died
				}
				if resp.Err != nil {
					failures++
				} else {
					puts++
				}
				resp.Destroy()

				resp, err = ipc.Call(self, port, opGet, key)
				if err != nil {
					return
				}
				if resp.Err != nil {
					failures++
				} else {
					gets++
				}
				resp.Destroy()

				if n == 199 {
					fmt.Printf("client-%d: %d puts, %d gets, %d clean failures\n",
						id, puts, gets, failures)
				}
			}
		})
	}
	for _, c := range clients {
		c.Join()
	}

	// Read the final size, then terminate the object via its own port —
	// the Section 10 shutdown sequence.
	boss := sched.New("boss")
	resp, err := ipc.Call(boss, port, opLen)
	if err == nil && resp.Err == nil {
		fmt.Printf("directory holds %d entries; shutting down\n", resp.Body[0])
		resp.Destroy()
	}
	resp, err = ipc.Call(boss, port, opShutdown)
	if err == nil {
		fmt.Printf("shutdown won the race: %v\n", resp.Body[0])
		resp.Destroy()
	}

	// Post-shutdown operations fail cleanly: translation is disabled.
	resp, err = ipc.Call(boss, port, opGet, "key-0-0")
	if err == nil {
		fmt.Printf("get after shutdown: err=%v (expected: no kernel object)\n", resp.Err)
		resp.Destroy()
	}

	port.Destroy()
	server.Join()
	fmt.Println("server drained; all references released")
}

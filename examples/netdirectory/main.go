// Network directory example: the whole communication stack of Section 3
// in one program — a kernel object exported through a port, typed MiG-style
// stubs, and transparent remote invocation over a real TCP connection.
//
// The server side runs a directory service; the client side talks to a
// netmsg proxy port with mig stubs and cannot tell the object is remote:
// the same calls would work unchanged against the local port.
//
// Run with:
//
//	go run ./examples/netdirectory
package main

import (
	"fmt"
	"net"

	"machlock/internal/core/object"
	"machlock/internal/ipc"
	"machlock/internal/mig"
	"machlock/internal/netmsg"
	"machlock/internal/sched"
)

// Operations.
const (
	opPut = iota
	opGet
	opStats
)

// The typed interface, shared by both sides (in Mach this is the .defs
// file MiG compiles).
type putArgs struct{ Key, Value string }
type putReply struct{ Replaced bool }
type getArgs struct{ Key string }
type getReply struct {
	Value string
	Found bool
}
type statsArgs struct{}
type statsReply struct{ Entries, Puts, Gets int }

// directory is the kernel object behind the service port.
type directory struct {
	object.Object
	entries    map[string]string
	puts, gets int
}

func buildInterface() *mig.Interface {
	iface := mig.NewInterface(ipc.KindCustom)
	mig.Define(iface, opPut, "put", func(ctx *ipc.Context, obj ipc.KObject, a *putArgs) (*putReply, error) {
		d := obj.(*directory)
		d.Lock()
		defer d.Unlock()
		if err := d.CheckActive(); err != nil {
			return nil, err
		}
		_, replaced := d.entries[a.Key]
		d.entries[a.Key] = a.Value
		d.puts++
		return &putReply{Replaced: replaced}, nil
	})
	mig.Define(iface, opGet, "get", func(ctx *ipc.Context, obj ipc.KObject, a *getArgs) (*getReply, error) {
		d := obj.(*directory)
		d.Lock()
		defer d.Unlock()
		if err := d.CheckActive(); err != nil {
			return nil, err
		}
		v, ok := d.entries[a.Key]
		d.gets++
		return &getReply{Value: v, Found: ok}, nil
	})
	mig.Define(iface, opStats, "stats", func(ctx *ipc.Context, obj ipc.KObject, a *statsArgs) (*statsReply, error) {
		d := obj.(*directory)
		d.Lock()
		defer d.Unlock()
		return &statsReply{Entries: len(d.entries), Puts: d.puts, Gets: d.gets}, nil
	})
	return iface
}

func main() {
	// ---- Server side ----
	dir := &directory{entries: make(map[string]string)}
	dir.Init("directory")
	port := ipc.NewPort("directory-port")
	dir.TakeRef()
	port.SetKObject(ipc.KindCustom, dir)

	srv := buildInterface().Server(ipc.Mach25)
	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})

	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go netmsg.Export(listener, port)
	fmt.Printf("directory service exported on %s\n", listener.Addr())

	// ---- Client side (could be another process; shares only the types) ----
	proxy, err := netmsg.Proxy(listener.Addr().String(), "directory-proxy")
	if err != nil {
		panic(err)
	}
	client := sched.New("client")

	for _, kv := range [][2]string{
		{"mach", "carnegie mellon"},
		{"lock", "simple or complex"},
		{"mach", "cmu"}, // replace
	} {
		r, err := mig.Call[putArgs, putReply](client, proxy, opPut, &putArgs{Key: kv[0], Value: kv[1]})
		if err != nil {
			panic(err)
		}
		fmt.Printf("put %q -> %q (replaced=%v)\n", kv[0], kv[1], r.Replaced)
	}
	for _, key := range []string{"mach", "lock", "missing"} {
		r, err := mig.Call[getArgs, getReply](client, proxy, opGet, &getArgs{Key: key})
		if err != nil {
			panic(err)
		}
		fmt.Printf("get %q -> %q (found=%v)\n", key, r.Value, r.Found)
	}
	st, err := mig.Call[statsArgs, statsReply](client, proxy, opStats, &statsArgs{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("remote stats: %d entries, %d puts, %d gets\n", st.Entries, st.Puts, st.Gets)
	fmt.Printf("frames over the wire: %+v\n", netmsg.GlobalStats())

	// Teardown: proxy, listener, service port, server loop.
	proxy.Destroy()
	listener.Close()
	port.Destroy()
	server.Join()
	fmt.Println("shut down cleanly")
}

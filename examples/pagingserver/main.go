// Paging server example: an external pager backing a memory object, the
// scenario behind two of the paper's showcase techniques —
//
//   - the memory object's dual reference counts (a structure refcount plus
//     a paging-in-progress count that excludes termination), and
//   - the customized pager-port creation lock (two boolean flags under the
//     object's simple lock, because port allocation can block).
//
// A task maps a memory object; faults send data requests to a pager thread
// over a port; concurrent faults on the same page coalesce into one fill;
// finally the object is released and termination waits for in-flight
// paging to drain.
//
// Run with:
//
//	go run ./examples/pagingserver
package main

import (
	"fmt"
	"sync/atomic"

	"machlock/internal/ipc"
	"machlock/internal/sched"
	"machlock/internal/vm"
)

const opDataRequest = 1

func main() {
	pool := vm.NewPool(64)
	m := vm.NewMap(pool)
	obj := vm.NewObject(pool, 16)

	var requests atomic.Int64

	// The customized lock in action: EnsurePager guarantees the port is
	// created at most once even with concurrent first-faulters, while the
	// (blocking) creation runs outside the object's simple lock.
	var created atomic.Int32
	boss := sched.New("boss")
	pagerPort := obj.EnsurePager(boss, func() *ipc.Port {
		created.Add(1)
		return ipc.NewPort("pager-port")
	})
	fmt.Printf("pager port created exactly once: %d creation(s)\n", created.Load())

	pagerPort.TakeRef()
	pager := sched.Go("pager", func(self *sched.Thread) {
		for {
			req, err := pagerPort.Receive(self)
			if err != nil {
				pagerPort.Release(nil)
				return
			}
			offset := req.Body[0].(uint64)
			data := make([]byte, 8)
			for i := range data {
				data[i] = byte(offset) + byte(i)
			}
			requests.Add(1)
			if reply := ipc.NewReply(req, data); reply != nil {
				if err := reply.Dest.Send(reply); err != nil {
					reply.Destroy()
				}
			}
			req.Destroy()
		}
	})

	// Wire the fault path to the pager: each missing page becomes an RPC.
	m.SetFetcher(func(t *sched.Thread, o *vm.Object, offset uint64) []byte {
		resp, err := ipc.Call(t, pagerPort, opDataRequest, offset)
		if err != nil {
			return nil
		}
		defer resp.Destroy()
		if resp.Err != nil {
			return nil
		}
		return resp.Body[0].([]byte)
	})

	if err := m.Allocate(boss, 0x100, 16, obj, 0); err != nil {
		panic(err)
	}

	// Concurrent faulters, with deliberate overlap on the same pages: the
	// busy-page protocol must coalesce duplicate fills.
	faulters := make([]*sched.Thread, 4)
	for i := range faulters {
		faulters[i] = sched.Go(fmt.Sprintf("faulter-%d", i), func(self *sched.Thread) {
			for va := uint64(0x100); va < 0x110; va++ {
				if err := m.Fault(self, va, false); err != nil {
					fmt.Printf("fault at %#x: %v\n", va, err)
				}
			}
		})
	}
	for _, f := range faulters {
		f.Join()
	}
	fmt.Printf("4 faulters x 16 pages -> %d resident pages from %d pager requests (duplicates coalesced)\n",
		obj.ResidentPages(), requests.Load())

	// Tear down: the map entry's reference and the creator's reference
	// both drop; termination waits for any in-flight paging, frees the
	// pages, and destroys the pager port.
	obj.Release(boss)
	m.Release(boss) // object termination destroys the pager port too,
	pager.Join()    // which stops the pager loop (its Receive fails)
	fmt.Printf("after release: pool has %d/%d pages free\n", pool.FreeCount(), pool.Total())
}

// Quickstart: the machlock public API in one small program — simple
// locks, a complex (readers/writers) lock with the Sleep option, the
// event-wait primitives, and a refcounted deactivatable kernel object.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync/atomic"

	"machlock"
)

// account is a kernel-object-style structure: embedded object base
// (simple lock + refcount + deactivation) plus protected state.
type account struct {
	machlock.KernelObject
	balance int64
}

func main() {
	simpleLocks()
	complexLocks()
	eventWait()
	objectLifecycle()
}

// simpleLocks: mutual exclusion with the spinning simple lock. The zero
// value is an unlocked lock, exactly like simple_lock_init's result.
func simpleLocks() {
	var lock machlock.SimpleLock
	counter := 0

	workers := make([]*machlock.Thread, 4)
	for i := range workers {
		workers[i] = machlock.Go(fmt.Sprintf("worker-%d", i), func(t *machlock.Thread) {
			for j := 0; j < 10_000; j++ {
				lock.Lock()
				counter++ // short critical section: no blocking allowed here
				lock.Unlock()
			}
		})
	}
	for _, w := range workers {
		w.Join()
	}
	fmt.Printf("simple lock: 4 workers x 10000 increments = %d\n", counter)
}

// complexLocks: many readers share; writers exclude and have priority; a
// writer that needs to read afterwards downgrades (which cannot fail).
// Built with the option API: Sleep makes waiters block, ReaderBias lets
// concurrent readers skip the central interlock entirely.
func complexLocks() {
	rw := machlock.NewLock(
		machlock.WithSleep(),
		machlock.WithReaderBias(),
		machlock.WithName("quickstart.table"))
	table := map[string]int{"a": 1}
	var reads atomic.Int64

	readers := make([]*machlock.Thread, 3)
	for i := range readers {
		readers[i] = machlock.Go("reader", func(t *machlock.Thread) {
			for j := 0; j < 5_000; j++ {
				rw.Read(t)
				_ = table["a"]
				reads.Add(1)
				rw.Done(t)
			}
		})
	}
	writer := machlock.Go("writer", func(t *machlock.Thread) {
		for j := 0; j < 100; j++ {
			rw.Write(t)
			table["a"]++
			rw.WriteToRead(t) // downgrade: verify while still holding
			_ = table["a"]
			rw.Done(t)
		}
	})
	writer.Join()
	for _, r := range readers {
		r.Join()
	}
	s := rw.Stats()
	fmt.Printf("complex lock: %d reads, %d writes, %d downgrades, value=%d\n",
		s.ReadAcquisitions, s.WriteAcquisitions, s.Downgrades, table["a"])
}

// eventWait: the race-free release-locks-then-wait protocol. AssertWait
// runs BEFORE the lock is released, so the producer's wakeup can never be
// lost, no matter how the goroutines interleave.
func eventWait() {
	var lock machlock.SimpleLock
	queue := []int{}
	ev := new(int) // events are conventionally addresses

	consumer := machlock.Go("consumer", func(t *machlock.Thread) {
		received := 0
		for received < 100 {
			lock.Lock()
			for len(queue) == 0 {
				machlock.AssertWait(t, ev) // 1. declare the event
				lock.Unlock()              // 2. release the lock
				machlock.ThreadBlock(t)    // 3. wait (no-op if already woken)
				lock.Lock()
			}
			queue = queue[1:]
			received++
			lock.Unlock()
		}
	})
	producer := machlock.Go("producer", func(t *machlock.Thread) {
		for i := 0; i < 100; i++ {
			lock.Lock()
			queue = append(queue, i)
			lock.Unlock()
			machlock.ThreadWakeup(ev)
		}
	})
	producer.Join()
	consumer.Join()
	fmt.Println("event wait: 100 items handed off with zero lost wakeups")
}

// objectLifecycle: create (one reference), share (clone under lock),
// deactivate (operations fail cleanly), destroy (last release).
func objectLifecycle() {
	acct := &account{}
	acct.Init("account") // born active with the creator's reference

	// A second holder clones a reference, then both operate.
	acct.TakeRef()
	deposit := func(amount int64) error {
		acct.Lock()
		defer acct.Unlock()
		if err := acct.CheckActive(); err != nil {
			return err // deactivated: recover and fail, never corrupt
		}
		acct.balance += amount
		return nil
	}
	if err := deposit(100); err != nil {
		panic(err)
	}

	// Terminate: deactivate under the lock; the structure lives on while
	// references remain.
	acct.Lock()
	acct.Deactivate()
	acct.Unlock()
	err := deposit(50)
	fmt.Printf("object: balance=%d, deposit after deactivation: %v\n", acct.balance, err)

	destroyed := false
	acct.Release(nil) // second holder's reference
	if acct.Release(func() { destroyed = true }) {
		fmt.Printf("object: destroyed at last release = %v\n", destroyed)
	}
}

package machlock_test

import (
	"fmt"

	"machlock"
)

// The simple lock is Mach's spinning mutual exclusion lock: the zero value
// is unlocked, and it may never be held across a blocking operation.
func ExampleSimpleLock() {
	var lock machlock.SimpleLock
	counter := 0

	workers := make([]*machlock.Thread, 4)
	for i := range workers {
		workers[i] = machlock.Go("worker", func(t *machlock.Thread) {
			for j := 0; j < 1000; j++ {
				lock.Lock()
				counter++
				lock.Unlock()
			}
		})
	}
	for _, w := range workers {
		w.Join()
	}
	fmt.Println(counter)
	// Output: 4000
}

// The complex lock shares among readers, excludes for writers (with writer
// priority), and downgrades without any possibility of failure — the
// paper's recommended alternative to upgrading.
func ExampleComplexLock() {
	rw := machlock.NewLock(machlock.WithSleep(), machlock.WithName("example.value"))
	value := 0

	w := machlock.Go("writer", func(t *machlock.Thread) {
		rw.Write(t)
		value = 42
		rw.WriteToRead(t) // downgrade: keep reading what we wrote
		observed := value
		rw.Done(t)
		fmt.Println("writer observed", observed)
	})
	w.Join()

	r := machlock.Go("reader", func(t *machlock.Thread) {
		rw.Read(t)
		fmt.Println("reader observed", value)
		rw.Done(t)
	})
	r.Join()
	// Output:
	// writer observed 42
	// reader observed 42
}

// NewLock composes the complex-lock options in one constructor. ReaderBias
// gives read-mostly locks a fast path that never touches the central
// interlock; such acquisitions show up as "biased" in the stats.
func ExampleNewLock() {
	rw := machlock.NewLock(
		machlock.WithSleep(),
		machlock.WithReaderBias(),
		machlock.WithName("cache"))

	r := machlock.Go("reader", func(t *machlock.Thread) {
		for i := 0; i < 2; i++ {
			rw.Read(t)
			rw.Done(t)
		}
	})
	r.Join()

	s := rw.Stats()
	fmt.Println("reads:", s.ReadAcquisitions, "biased:", s.BiasedReads)
	// Output: reads: 2 biased: 2
}

// The event-wait protocol splits declaration (AssertWait) from the wait
// itself (ThreadBlock): asserting before releasing the lock makes the
// release-and-wait atomic with respect to wakeups.
func ExampleAssertWait() {
	var lock machlock.SimpleLock
	ready := false
	ev := new(int)

	consumer := machlock.Go("consumer", func(t *machlock.Thread) {
		lock.Lock()
		for !ready {
			machlock.AssertWait(t, ev) // 1. declare
			lock.Unlock()              // 2. release
			machlock.ThreadBlock(t)    // 3. wait (no-op if already woken)
			lock.Lock()
		}
		lock.Unlock()
		fmt.Println("consumer saw the event")
	})

	producer := machlock.Go("producer", func(t *machlock.Thread) {
		lock.Lock()
		ready = true
		lock.Unlock()
		machlock.ThreadWakeup(ev)
	})
	producer.Join()
	consumer.Join()
	// Output: consumer saw the event
}

// Kernel objects combine a lock, a reference count, and the deactivation
// protocol: operations re-check liveness after every relock and fail
// cleanly once the object is terminated.
func ExampleKernelObject() {
	type account struct {
		machlock.KernelObject
		balance int
	}
	acct := &account{}
	acct.Init("savings") // born active, one reference (the creator's)

	deposit := func(n int) error {
		acct.Lock()
		defer acct.Unlock()
		if err := acct.CheckActive(); err != nil {
			return err
		}
		acct.balance += n
		return nil
	}
	fmt.Println("deposit:", deposit(100))

	acct.Lock()
	acct.Deactivate() // terminate the object
	acct.Unlock()
	fmt.Println("deposit after termination:", deposit(50))

	destroyed := acct.Release(nil) // last reference: structure goes away
	fmt.Println("destroyed:", destroyed)
	// Output:
	// deposit: <nil>
	// deposit after termination: object: deactivated
	// destroyed: true
}

// Reference counts guarantee existence: clone under the lock, release when
// done, destroy exactly at zero.
func ExampleRefCount() {
	var refs machlock.RefCount
	refs.Init(1) // the creator's reference
	refs.Clone() // a second holder

	fmt.Println("after first release:", refs.Release())
	fmt.Println("after final release:", refs.Release())
	// Output:
	// after first release: false
	// after final release: true
}

// Benchmarks: one per experiment in the DESIGN.md index (E1–E13), runnable
// with `go test -bench=. -benchmem`. Each benchmark measures the hot
// operation behind its experiment; the full tables (parameter sweeps,
// baselines, deadlock demonstrations) come from the same drivers via
// `go run ./cmd/machbench`.
package machlock_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machlock"
	"machlock/internal/core/cxlock"
	"machlock/internal/core/object"
	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/experiments"
	"machlock/internal/hw"
	"machlock/internal/ipc"
	"machlock/internal/pmap"
	"machlock/internal/sched"
	"machlock/internal/timer"
	"machlock/internal/tlbsim"
	"machlock/internal/vm"
)

// BenchmarkE1LockVariants: simulated spin-lock acquisition under 2-CPU
// contention, reporting interconnect transactions per acquisition — the
// paper's TTAS metric.
func BenchmarkE1LockVariants(b *testing.B) {
	for _, policy := range []splock.Policy{splock.TAS, splock.TTAS, splock.TASTTAS} {
		b.Run(policy.String(), func(b *testing.B) {
			m := hw.New(2)
			l := splock.NewSimWith(splock.Opts{Machine: m, Algorithm: policy})
			var wg sync.WaitGroup
			half := b.N/2 + 1
			b.ResetTimer()
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(c *hw.CPU) {
					defer wg.Done()
					for j := 0; j < half; j++ {
						l.Lock(c)
						l.Unlock(c)
					}
				}(m.CPU(i))
			}
			wg.Wait()
			b.ReportMetric(float64(m.BusTransactions())/float64(2*half), "bus-txns/acq")
		})
	}
}

// BenchmarkE2Granularity: counter increments under one global lock vs one
// lock per counter.
func BenchmarkE2Granularity(b *testing.B) {
	const slots = 64
	for _, tc := range []struct {
		name  string
		locks int
	}{{"global", 1}, {"per-object", slots}} {
		b.Run(tc.name, func(b *testing.B) {
			locks := make([]splock.Lock, tc.locks)
			var counters [slots]struct {
				v   uint64
				pad [7]uint64
			}
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					slot := i % slots
					i++
					l := &locks[slot*tc.locks/slots]
					l.Lock()
					counters[slot].v++
					l.Unlock()
				}
			})
		})
	}
}

// BenchmarkE3WriterPriority: writer acquisition latency through a flood of
// readers on the writer-priority complex lock.
func BenchmarkE3WriterPriority(b *testing.B) {
	l := cxlock.NewWith(cxlock.Options{Sleep: true})
	stop := make(chan struct{})
	var readers []*sched.Thread
	for i := 0; i < 3; i++ {
		readers = append(readers, sched.Go("r", func(self *sched.Thread) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Read(self)
				l.Done(self)
			}
		}))
	}
	w := sched.New("writer")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Write(w)
		l.Done(w)
	}
	b.StopTimer()
	close(stop)
	for _, r := range readers {
		r.Join()
	}
}

// BenchmarkE4Upgrade: inspect-then-modify via read+upgrade vs
// write+downgrade, 2 contending threads.
func BenchmarkE4Upgrade(b *testing.B) {
	b.Run("read+upgrade", func(b *testing.B) {
		l := cxlock.NewWith(cxlock.Options{Sleep: true})
		var restarts atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			self := sched.New("u")
			for pb.Next() {
				for {
					l.Read(self)
					if failed := l.ReadToWrite(self); failed {
						restarts.Add(1)
						continue
					}
					l.Done(self)
					break
				}
			}
		})
		b.ReportMetric(float64(restarts.Load()), "restarts")
	})
	b.Run("write+downgrade", func(b *testing.B) {
		l := cxlock.NewWith(cxlock.Options{Sleep: true})
		b.RunParallel(func(pb *testing.PB) {
			self := sched.New("d")
			for pb.Next() {
				l.Write(self)
				l.WriteToRead(self)
				l.Done(self)
			}
		})
	})
}

// BenchmarkE5SpinVsSleep: contended write acquisitions with the Sleep
// option off and on.
func BenchmarkE5SpinVsSleep(b *testing.B) {
	for _, tc := range []struct {
		name      string
		sleepable bool
	}{{"spin", false}, {"sleep", true}} {
		b.Run(tc.name, func(b *testing.B) {
			l := cxlock.NewWith(cxlock.Options{Sleep: tc.sleepable})
			b.RunParallel(func(pb *testing.PB) {
				self := sched.New("w")
				for pb.Next() {
					l.Write(self)
					l.Done(self)
				}
			})
		})
	}
}

// BenchmarkE6Refcount: clone+release pairs for the three existence
// coordination schemes.
func BenchmarkE6Refcount(b *testing.B) {
	b.Run("lock-protected", func(b *testing.B) {
		var lock splock.Lock
		var c refcount.Count
		c.Init(1)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				lock.Lock()
				c.Clone()
				lock.Unlock()
				lock.Lock()
				c.Release()
				lock.Unlock()
			}
		})
	})
	b.Run("atomic", func(b *testing.B) {
		var c refcount.Atomic
		c.Init(1)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Clone()
				c.Release()
			}
		})
	})
	b.Run("gc", func(b *testing.B) {
		type node struct{ payload [4]uint64 }
		shared := &node{}
		var slot atomic.Pointer[node]
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				slot.Store(shared)
				slot.Store(nil)
			}
		})
	})
}

// BenchmarkE7EventWait: one producer/consumer handoff per op through the
// split assert_wait/thread_block protocol.
func BenchmarkE7EventWait(b *testing.B) {
	var mu sync.Mutex
	ready := 0
	ev := new(int)
	total := b.N
	consumer := sched.Go("consumer", func(self *sched.Thread) {
		consumed := 0
		for consumed < total {
			mu.Lock()
			for ready == 0 {
				sched.AssertWait(self, ev)
				mu.Unlock()
				sched.ThreadBlock(self)
				mu.Lock()
			}
			ready--
			consumed++
			mu.Unlock()
		}
	})
	b.ResetTimer()
	producer := sched.Go("producer", func(self *sched.Thread) {
		for i := 0; i < total; i++ {
			mu.Lock()
			ready++
			mu.Unlock()
			sched.ThreadWakeup(ev)
		}
	})
	producer.Join()
	consumer.Join()
}

// BenchmarkE8PmapOrder: pmap_enter (forward order) throughput under
// concurrent reverse-order page protects, per arbitration mode.
func BenchmarkE8PmapOrder(b *testing.B) {
	for _, mode := range []pmap.Mode{pmap.SystemLock, pmap.Backout} {
		b.Run(mode.String(), func(b *testing.B) {
			s := pmap.NewSystem(mode, 16)
			pm := s.NewPmap()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
						s.PageProtect(uint64(i%16), pmap.ProtRead)
						i++
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Enter(pm, uint64(i%256), uint64(i%16), pmap.ProtAll)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkE9Shootdown: one full interrupt-barrier TLB shootdown per op on
// a 4-CPU machine.
func BenchmarkE9Shootdown(b *testing.B) {
	m := hw.New(4)
	s := tlbsim.New(m)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(c *hw.CPU) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Checkpoint()
				}
			}
		}(m.CPU(i))
	}
	initiator := m.CPU(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Shootdown(initiator, uint64(i))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkE10RPC: one full kernel RPC (translate, reference, execute,
// release, reply) per op.
func BenchmarkE10RPC(b *testing.B) {
	srv := ipc.NewServer(ipc.Mach25)
	srv.Register(ipc.KindCustom, 1, func(ctx *ipc.Context, obj ipc.KObject, req *ipc.Message) *ipc.Message {
		return ipc.NewReply(req, "ok")
	})
	port := ipc.NewPort("svc")
	o := &benchKObj{}
	o.Init("o")
	o.TakeRef()
	port.SetKObject(ipc.KindCustom, o)
	port.TakeRef()
	server := sched.Go("server", func(self *sched.Thread) {
		srv.Serve(self, port)
		port.Release(nil)
	})
	client := sched.New("client")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ipc.Call(client, port, 1)
		if err != nil {
			b.Fatal(err)
		}
		resp.Destroy()
	}
	b.StopTimer()
	port.Destroy()
	server.Join()
}

// BenchmarkE11Pageable: wire/unwire cycles via the rewritten (deadlock-
// free) protocol; the recursive variant's result is a deadlock, which is
// demonstrated rather than benchmarked (see cmd/deadlockdemo and the E11
// driver).
func BenchmarkE11Pageable(b *testing.B) {
	pool := vm.NewPool(64)
	m := vm.NewMap(pool)
	obj := vm.NewObject(pool, 16)
	self := sched.New("wirer")
	if err := m.Allocate(self, 0, 16, obj, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Wire(self, 0, 16); err != nil {
			b.Fatal(err)
		}
		if err := m.Unwire(self, 0, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Uniproc: the uniprocessor compile-out delta and the
// non-locking timer read.
func BenchmarkE12Uniproc(b *testing.B) {
	b.Run("simple-lock", func(b *testing.B) {
		var l splock.Lock
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("compiled-out", func(b *testing.B) {
		var l splock.Noop
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("timer-read", func(b *testing.B) {
		var tm timer.Timer
		tm.Set(timer.LowMax - 1000)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
					tm.Add(700)
				}
			}
		}()
		b.ResetTimer()
		var retries int64
		for i := 0; i < b.N; i++ {
			_, r := tm.Read()
			retries += int64(r)
		}
		b.StopTimer()
		close(stop)
		<-done
		b.ReportMetric(float64(retries)/float64(b.N), "retries/read")
	})
}

// BenchmarkE13ReadScaling: contended read acquisition on the complex lock,
// unbiased vs reader-biased, across reader counts up to GOMAXPROCS with 0
// or 1 background writers. The biased lock's readers publish in the
// visible-readers table and skip the interlock; the writer (when present)
// revokes the bias, so the w1 rows show the revocation/cooldown cost.
func BenchmarkE13ReadScaling(b *testing.B) {
	maxReaders := runtime.GOMAXPROCS(0)
	if maxReaders < 4 {
		maxReaders = 4
	}
	var counts []int
	for n := 1; n <= maxReaders; n *= 2 {
		counts = append(counts, n)
	}
	for _, biased := range []bool{false, true} {
		name := "interlock"
		if biased {
			name = "biased"
		}
		for _, nr := range counts {
			for _, nw := range []int{0, 1} {
				b.Run(fmt.Sprintf("%s/r%d/w%d", name, nr, nw), func(b *testing.B) {
					l := cxlock.NewWith(cxlock.Options{ReaderBias: biased, Name: "bench.e13"})
					stop := make(chan struct{})
					var writers []*sched.Thread
					for i := 0; i < nw; i++ {
						writers = append(writers, sched.Go("w", func(self *sched.Thread) {
							for {
								select {
								case <-stop:
									return
								default:
								}
								l.Write(self)
								l.Done(self)
								time.Sleep(200 * time.Microsecond) // mostly-read mix
							}
						}))
					}
					per := b.N/nr + 1
					b.ResetTimer()
					var readers []*sched.Thread
					for i := 0; i < nr; i++ {
						readers = append(readers, sched.Go("r", func(self *sched.Thread) {
							for j := 0; j < per; j++ {
								l.Read(self)
								l.Done(self)
							}
						}))
					}
					for _, r := range readers {
						r.Join()
					}
					b.StopTimer()
					close(stop)
					for _, w := range writers {
						w.Join()
					}
					s := l.Stats()
					b.ReportMetric(float64(s.BiasedReads)/float64(s.ReadAcquisitions+1), "biased-frac")
				})
			}
		}
	}
}

// benchKObj gives the RPC bench a minimal kernel object.
type benchKObj struct {
	object.Object
}

// BenchmarkExperimentDriversQuick runs each experiment driver once per
// iteration set, keeping the full pipelines honest under `-bench`.
func BenchmarkExperimentDriversQuick(b *testing.B) {
	for _, id := range []string{"e1", "e7", "e12"} {
		e, ok := experiments.Lookup(id)
		if !ok {
			b.Fatalf("experiment %s missing", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = e.Run(experiments.Config{Quick: true})
			}
		})
	}
}

// BenchmarkE14ArsenalContended: the shootout's end-to-end leg as a bench —
// each arsenal algorithm under GOMAXPROCS-wide contention with a short
// critical section, labeled by algorithm so `-bench E14 | benchstat` lines
// the arsenal up directly. The deterministic coherence tables come from
// `go run ./cmd/machbench -run e14`.
func BenchmarkE14ArsenalContended(b *testing.B) {
	for _, a := range machlock.Algorithms() {
		b.Run(a.String(), func(b *testing.B) {
			l := machlock.NewSimpleLock(
				machlock.WithAlgorithm(a),
				machlock.WithDomains(2),
				machlock.WithName("bench.e14."+a.String()),
			)
			var n int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					n++
					l.Unlock()
				}
			})
			if n != int64(b.N) {
				b.Fatalf("lost updates under %s: n=%d, want %d", a, n, b.N)
			}
			st := l.AlgoStats()
			if st.Handoffs > 0 {
				b.ReportMetric(float64(st.Handoffs)/float64(b.N), "handoffs/acq")
			}
			if st.Parks > 0 {
				b.ReportMetric(float64(st.Parks)/float64(b.N), "parks/acq")
			}
		})
	}
}

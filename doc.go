// Package machlock is a Go reproduction of the synchronization machinery
// described in "Locking and Reference Counting in the Mach Kernel"
// (David L. Black, Avadis Tevanian Jr., David B. Golub, Michael W. Young;
// ICPP 1991).
//
// The paper divides kernel coordination into two classes and this package
// exposes the Mach solution to both:
//
//   - Operation coordination — simple locks (spinning mutual exclusion,
//     Appendix A) and complex locks (multiple readers/single writer with
//     writer priority, plus the Sleep and Recursive options and
//     upgrade/downgrade, Appendix B);
//   - Existence coordination — reference counting with clone-under-lock
//     and release-may-destroy semantics (Section 8), the deactivated-object
//     protocol (Section 9), and the kernel-operation reference sequence
//     (Section 10).
//
// The event-wait primitives of Section 6 (assert_wait / thread_block /
// thread_wakeup / clear_wait / thread_sleep) underpin the sleeping lock
// protocols and are exported as well.
//
// # Thread identity
//
// Mach's lock and wait primitives rely on an implicit current_thread().
// Go exposes no goroutine-local storage, so operations that need an
// identity (sleeping on a lock, recursive holds, the wait primitives) take
// an explicit *Thread. Create one per worker goroutine with Go or
// NewThread. Spin-only acquisitions may pass nil.
//
// # Quick start
//
//	var lock machlock.SimpleLock // zero value is an unlocked lock
//	lock.Lock()
//	// ... critical section: may not block while held ...
//	lock.Unlock()
//
//	rw := machlock.NewLock(machlock.WithSleep(), machlock.WithReaderBias())
//	worker := machlock.Go("worker", func(self *machlock.Thread) {
//	    rw.Read(self) // biased: published with one store, no interlock
//	    defer rw.Done(self)
//	    // ... shared read ...
//	})
//	worker.Join()
//
// # Construction
//
// NewLock (complex locks) and NewSimpleLock (simple locks) with With…
// options are the only supported construction paths; earlier positional
// constructors and post-construction mutators (NewComplexLock,
// SetSleepable) have been removed. NewLock composes the Appendix B
// options — WithSleep, WithRecursive, WithReaderBias, WithName,
// WithClass — in one constructor; the Locker and RWLocker interfaces
// abstract the resulting locks for code that takes either. The zero
// values of SimpleLock and of the internal lock types remain valid
// unlocked locks with default behaviour.
//
// # The algorithm arsenal
//
// One Algorithm enum selects how a lock is acquired under contention,
// for both lock shapes:
//
//	hot := machlock.NewSimpleLock(machlock.WithAlgorithm(machlock.Queue))
//	cl := machlock.NewLock(machlock.WithSpinThenPark(64)) // sleepable
//
// Default is the paper's TAS+TTAS spin; Queue is an MCS lock (per-waiter
// queue nodes, local spinning, FIFO handoff — handoff traffic stays
// constant as waiters are added); Cohort partitions waiters into
// topology domains (WithDomains) and batches a domain's holders to keep
// the protected data's cache line local; Adaptive spins a bounded budget
// then parks the waiter (WithSpinThenPark sizes the budget; on a complex
// lock it selects spin-then-park waiting and implies WithSleep; on a
// simple lock it implies Adaptive). WithAlgorithm on a complex lock
// selects the interlock's algorithm. Recommend maps a traced contention
// profile to the algorithm these trade-offs favour.
//
// The deeper subsystems the paper describes — the simulated multiprocessor
// with coherence accounting, the VM system with the vm_map_pageable
// deadlock, pmap lock-order arbitration, TLB shootdown, the IPC reference
// protocol — live in internal packages and are exercised by the examples,
// the experiment harness (cmd/machbench), and the benchmarks; see
// DESIGN.md for the inventory and EXPERIMENTS.md for results.
package machlock

package machlock

import (
	"machlock/internal/core/cxlock"
	"machlock/internal/core/object"
	"machlock/internal/core/refcount"
	"machlock/internal/core/splock"
	"machlock/internal/sched"
)

// SimpleLock is a spinning (non-blocking) mutual exclusion lock — the
// paper's machine-dependent simple lock (Appendix A). The zero value is
// unlocked (simple_lock_init). Simple locks may not be held across
// blocking operations or context switches; the paper calls violations
// fatal.
type SimpleLock = splock.Lock

// NoopLock is the uniprocessor simple lock: every operation is a no-op,
// the equivalent of Mach compiling simple locks out of uniprocessor
// kernels through the decl_simple_lock_data macro.
type NoopLock = splock.Noop

// SimpleMutex is the machine-independent simple lock interface satisfied
// by both SimpleLock and NoopLock.
type SimpleMutex = splock.Mutex

// CheckedLock is a simple lock with the debugging discipline the paper's
// lock structure was designed to admit: holder tracking, double-acquire
// and foreign-release detection, and enforcement (via Thread) of the
// no-blocking-while-held rule.
type CheckedLock = splock.Checked

// NewCheckedLock creates a named checked simple lock.
func NewCheckedLock(name string) *CheckedLock { return splock.NewChecked(name) }

// ComplexLock is the machine-independent multiple-readers/single-writer
// lock of Appendix B, with writer priority, the Sleep and Recursive
// options, and read↔write upgrade/downgrade. The zero value is a valid
// non-sleepable lock.
type ComplexLock = cxlock.Lock

// ComplexLockStats is a snapshot of a complex lock's accounting.
type ComplexLockStats = cxlock.Stats

// ClassLock is the Section 5 custom lock with two exclusive classes of
// readers: members of a class share, the classes exclude each other, and
// neither class can starve the other. Mach's pmap modules used this shape
// to arbitrate between the two lock orders.
type ClassLock = cxlock.ClassLock

// LockClass identifies one of a ClassLock's two classes.
type LockClass = cxlock.Class

// The two classes of a ClassLock.
const (
	ForwardClass = cxlock.Forward
	ReverseClass = cxlock.Reverse
)

// NewClassLock creates an unheld two-class lock.
func NewClassLock() *ClassLock { return cxlock.NewClassLock() }

// StatLock is the statistics variant of the simple lock (Appendix A.1):
// it records acquisitions, contention, and hold/wait time histograms.
type StatLock = splock.StatLock

// NewStatLock creates a named statistics lock.
func NewStatLock(name string) *StatLock { return splock.NewStat(name) }

// RefCount is a reference count protected by its object's lock: Clone
// under the lock, Release may destroy (Section 8).
type RefCount = refcount.Count

// AtomicRefCount is the lock-free alternative Mach could not assume in
// 1991, provided for comparison (experiment E6).
type AtomicRefCount = refcount.Atomic

// KernelObject is the embeddable base combining a simple lock, a reference
// count, and the Section 9 deactivation protocol. Embed it to obtain the
// whole discipline; always Init with a name (objects are born with one
// reference, the creator's).
type KernelObject = object.Object

// ErrDeactivated is returned by operations that find their object
// deactivated (Section 9).
var ErrDeactivated = object.ErrDeactivated

// Thread is a kernel thread identity: the entity that holds locks and
// references. Mach's implicit current_thread() becomes an explicit handle.
type Thread = sched.Thread

// Event identifies an occurrence a thread may wait for — conventionally a
// pointer to the data structure involved. The nil event can only be ended
// by ClearWait.
type Event = sched.Event

// WaitResult reports why ThreadBlock returned.
type WaitResult = sched.WaitResult

// WaitResult values.
const (
	// Awakened: the awaited event occurred.
	Awakened = sched.Awakened
	// Restarted: the thread was resumed by ClearWait.
	Restarted = sched.Restarted
	// NotWaiting: the event occurred before ThreadBlock; no wait happened.
	NotWaiting = sched.NotWaiting
)

// NewThread creates a bare thread identity for the calling goroutine.
func NewThread(name string) *Thread { return sched.New(name) }

// Go creates a thread identity and runs body on a new goroutine; Join
// waits for it.
func Go(name string, body func(t *Thread)) *Thread { return sched.Go(name, body) }

// AssertWait declares that t will wait for event e (assert_wait). Call it
// BEFORE releasing the locks protecting the awaited condition; the
// subsequent ThreadBlock cannot then lose a wakeup.
func AssertWait(t *Thread, e Event) { sched.AssertWait(t, e) }

// ThreadBlock parks t until its asserted event occurs (thread_block); it
// returns immediately with NotWaiting if the event already occurred.
func ThreadBlock(t *Thread) WaitResult { return sched.ThreadBlock(t) }

// ThreadWakeup declares event e occurred, waking all waiters
// (thread_wakeup). Returns the number of threads awakened.
func ThreadWakeup(e Event) int { return sched.ThreadWakeup(e) }

// ThreadWakeupOne wakes at most one waiter on e (thread_wakeup_one).
func ThreadWakeupOne(e Event) int { return sched.ThreadWakeupOne(e) }

// ClearWait resumes a specific thread regardless of its event
// (clear_wait); its ThreadBlock returns Restarted.
func ClearWait(t *Thread) bool { return sched.ClearWait(t) }

// ThreadSleep atomically releases a lock and waits for event e
// (thread_sleep): the wait is asserted before unlock runs, closing the
// lost-wakeup window.
func ThreadSleep(t *Thread, e Event, unlock func()) WaitResult {
	return sched.ThreadSleep(t, e, unlock)
}
